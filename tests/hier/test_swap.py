"""Tests of the incremental block-swap path (DesignTimer.swap_instance_model).

A :class:`~repro.hier.analysis.DesignTimer` keeps the assembled design graph
and an incremental session alive across model swaps; replacing one
instance's extracted model must re-time the design to the same result as a
full from-scratch rebuild and repropagation.
"""

import pytest

from repro.errors import HierarchyError
from repro.experiments.config import ExperimentConfig
from repro.experiments.figure7 import build_multiplier_design, build_multiplier_module
from repro.hier.analysis import (
    CorrelationMode,
    DesignTimer,
    analyze_hierarchical_design,
)
from repro.liberty.library import standard_library
from repro.model.extraction import extract_timing_model
from repro.timing.builder import build_timing_graph
from repro.timing.propagation import propagate_arrival_times_batch


@pytest.fixture(scope="module")
def module_pair():
    """One 4x4 multiplier module plus an alternate (smaller) model of it."""
    config = ExperimentConfig(monte_carlo_samples=400, monte_carlo_chunk=200)
    module = build_multiplier_module(bits=4, config=config)
    library = standard_library()
    full_graph = build_timing_graph(
        module.netlist, library, module.placement, module.variation,
        name=module.netlist.name,
    )
    alternate = extract_timing_model(
        full_graph, module.variation, threshold=0.2, name="mult4_t20"
    )
    return module, alternate


@pytest.fixture
def quad_design(module_pair):
    module, _unused = module_pair
    return build_multiplier_design(module)


class TestSwapInstanceModel:
    def test_swap_matches_full_rebuild(self, module_pair, quad_design):
        module, alternate = module_pair
        session = DesignTimer(quad_design)
        session.circuit_delay()  # establish the baseline state

        session.swap_instance_model("m0_0", alternate)
        incremental = session.circuit_delay()

        # Ground truth 1: a full batch pass over the *same* live graph.
        times = propagate_arrival_times_batch(session.graph)
        for vertex, form in session.timer.arrival_times().items():
            assert form.is_close(times.form(vertex), rtol=1e-9, atol=1e-9), vertex

        # Ground truth 2: rebuilding the modified design from scratch.
        fresh = analyze_hierarchical_design(quad_design)
        assert incremental.mean == pytest.approx(fresh.mean, rel=1e-9)
        assert incremental.std == pytest.approx(fresh.std, rel=1e-9)
        assert quad_design.instance("m0_0").model is alternate
        # The old gate-level view described the old implementation; it must
        # not be silently carried over to the swapped model.
        assert quad_design.instance("m0_0").netlist is None
        assert quad_design.instance("m0_0").placement is None

    def test_swap_back_restores_the_distribution(self, module_pair, quad_design):
        module, alternate = module_pair
        session = DesignTimer(quad_design)
        before = session.circuit_delay()
        session.swap_instance_model("m0_0", alternate)
        session.circuit_delay()
        session.swap_instance_model("m0_0", module.model)
        after = session.circuit_delay()
        assert after.mean == pytest.approx(before.mean, rel=1e-12)
        assert after.std == pytest.approx(before.std, rel=1e-12)

    def test_swap_works_in_global_only_mode(self, module_pair, quad_design):
        _module, alternate = module_pair
        session = DesignTimer(quad_design, CorrelationMode.GLOBAL_ONLY)
        session.circuit_delay()
        session.swap_instance_model("m1_1", alternate)
        incremental = session.circuit_delay()
        fresh = analyze_hierarchical_design(quad_design, CorrelationMode.GLOBAL_ONLY)
        assert incremental.mean == pytest.approx(fresh.mean, rel=1e-9)
        assert incremental.std == pytest.approx(fresh.std, rel=1e-9)

    def test_analyze_snapshot(self, module_pair, quad_design):
        module, alternate = module_pair
        session = DesignTimer(quad_design)
        result = session.analyze()
        assert result.design_name == quad_design.name
        assert set(result.output_arrivals) == set(quad_design.primary_outputs)
        fresh = analyze_hierarchical_design(quad_design)
        assert result.mean == pytest.approx(fresh.mean, rel=1e-9)


class TestReextractInstance:
    """Warm re-extraction of a swapped block through its module session."""

    def test_reextract_matches_cold_pipeline(self, module_pair, quad_design):
        module, _unused = module_pair
        library = standard_library()
        full_graph = build_timing_graph(
            module.netlist, library, module.placement, module.variation,
            name=module.netlist.name,
        )
        session = DesignTimer(quad_design)
        session.circuit_delay()
        session.attach_module_source("m0_0", full_graph, module.variation)

        # Module-level ECO: slow one edge of the block's full graph down.
        edge = full_graph.edges[len(full_graph.edges) // 2]
        full_graph.replace_edge_delay(edge, edge.delay.scale(1.4))

        instance = session.reextract_instance("m0_0", threshold=0.05)
        incremental = session.circuit_delay()

        # Ground truth: cold extraction of the edited module plus a full
        # design rebuild (the design object already holds the new model).
        cold_model = extract_timing_model(
            full_graph, module.variation, threshold=0.05
        )
        cold_edges = sorted(
            (e.source, e.sink, e.delay.nominal) for e in cold_model.graph.edges
        )
        warm_edges = sorted(
            (e.source, e.sink, e.delay.nominal) for e in instance.model.graph.edges
        )
        assert len(warm_edges) == len(cold_edges)
        for warm, cold in zip(warm_edges, cold_edges):
            assert warm[:2] == cold[:2]
            assert warm[2] == pytest.approx(cold[2], abs=1e-9)
        fresh = analyze_hierarchical_design(quad_design)
        assert incremental.mean == pytest.approx(fresh.mean, rel=1e-9)
        assert incremental.std == pytest.approx(fresh.std, rel=1e-9)

    def test_repeated_reextraction_is_warm(self, module_pair, quad_design):
        module, _unused = module_pair
        library = standard_library()
        full_graph = build_timing_graph(
            module.netlist, library, module.placement, module.variation,
            name=module.netlist.name,
        )
        session = DesignTimer(quad_design)
        extraction = session.attach_module_source(
            "m1_1", full_graph, module.variation
        )
        assert session.extraction_session("m1_1") is extraction
        session.reextract_instance("m1_1")
        serial_before = extraction.allpairs.serial
        edge = full_graph.edges[0]
        full_graph.replace_edge_delay(edge, edge.delay.scale(1.05))
        session.reextract_instance("m1_1")
        # One incremental refresh, not a rebuilt session.
        assert extraction.allpairs.serial == serial_before + 1
        assert extraction.allpairs.last_update.mode == "incremental"

    def test_reextract_without_source_raises(self, module_pair, quad_design):
        session = DesignTimer(quad_design)
        with pytest.raises(HierarchyError, match="attach_module_source"):
            session.reextract_instance("m0_0")

    def test_attach_validates_instance_name(self, module_pair, quad_design):
        module, _unused = module_pair
        library = standard_library()
        full_graph = build_timing_graph(
            module.netlist, library, module.placement, module.variation,
            name=module.netlist.name,
        )
        session = DesignTimer(quad_design)
        with pytest.raises(HierarchyError):
            session.attach_module_source("ghost", full_graph, module.variation)


class TestReplaceInstanceValidation:
    def test_foreign_port_interface_rejected(self, module_pair, quad_design):
        """A model with a different port interface cannot be swapped in."""
        from repro.netlist.netlist import Gate, Netlist
        from repro.placement.placer import place_netlist
        from repro.timing.builder import default_variation_for

        gates = [Gate("u1", "NAND", ("p", "q"), "r")]
        netlist = Netlist("alien", ["p", "q"], ["r"], gates)
        netlist.validate()
        library = standard_library()
        placement = place_netlist(netlist, library)
        variation = default_variation_for(netlist, placement)
        graph = build_timing_graph(netlist, library, placement, variation)
        foreign = extract_timing_model(graph, variation, threshold=0.0)

        session = DesignTimer(quad_design)
        before = session.circuit_delay()
        with pytest.raises(HierarchyError, match="port"):
            session.swap_instance_model("m0_0", foreign)
        # The failed swap left design and graph untouched.
        assert quad_design.instance("m0_0").model is module_pair[0].model
        after = session.circuit_delay()
        assert after.mean == pytest.approx(before.mean, rel=1e-12)

    def test_unknown_instance_rejected(self, module_pair, quad_design):
        _module, alternate = module_pair
        session = DesignTimer(quad_design)
        with pytest.raises(HierarchyError):
            session.swap_instance_model("ghost", alternate)

    def test_mismatched_correlation_profile_rejected(self, module_pair, quad_design):
        """The frozen design grids/PCA assume the shared spatial profile."""
        from repro.variation.model import VariationModel
        from repro.variation.spatial import SpatialCorrelation

        module, _alternate = module_pair
        library = standard_library()
        variation = VariationModel(
            module.variation.partition,
            SpatialCorrelation(neighbor_correlation=0.6, floor_correlation=0.1),
            0.12,
            0.2,
        )
        graph = build_timing_graph(
            module.netlist, library, module.placement, variation,
            name=module.netlist.name,
        )
        foreign_profile = extract_timing_model(
            graph, variation, threshold=0.0, name="mult4_other_profile"
        )
        session = DesignTimer(quad_design)
        session.circuit_delay()
        with pytest.raises(HierarchyError, match="correlation profile"):
            session.swap_instance_model("m0_0", foreign_profile)
        assert quad_design.instance("m0_0").model is module.model
