"""Tests of the design-level hierarchical analysis."""

import numpy as np
import pytest

from repro.errors import HierarchyError
from repro.experiments.config import ExperimentConfig
from repro.experiments.figure7 import build_multiplier_design, build_multiplier_module
from repro.hier.analysis import (
    CorrelationMode,
    analyze_hierarchical_design,
    build_design_graph,
)
from repro.hier.design import HierarchicalDesign, ModuleInstance
from repro.model.extraction import extract_timing_model
from repro.montecarlo.hierarchical import monte_carlo_hierarchical
from repro.variation.grid import Die


@pytest.fixture(scope="module")
def small_module():
    """A characterized 4x4 multiplier module (shared across tests: expensive)."""
    config = ExperimentConfig(monte_carlo_samples=800, monte_carlo_chunk=400)
    return build_multiplier_module(bits=4, config=config), config


@pytest.fixture(scope="module")
def quad_design(small_module):
    module, _unused = small_module
    return build_multiplier_design(module)


class TestDesignGraph:
    def test_replacement_graph_structure(self, quad_design):
        graph, grids, pca = build_design_graph(quad_design, CorrelationMode.REPLACEMENT)
        assert grids is not None and pca is not None
        assert graph.num_locals == pca.num_components
        model_edges = sum(
            instance.model.graph.num_edges for instance in quad_design.instances
        )
        assert graph.num_edges == model_edges + len(quad_design.connections)
        assert set(graph.inputs) == set(quad_design.primary_inputs)
        assert set(graph.outputs) == set(quad_design.primary_outputs)

    def test_global_only_graph_structure(self, quad_design):
        graph, grids, pca = build_design_graph(quad_design, CorrelationMode.GLOBAL_ONLY)
        assert grids is None and pca is None
        expected_locals = sum(
            instance.model.num_locals for instance in quad_design.instances
        )
        assert graph.num_locals == expected_locals

    def test_unvalidated_design_rejected(self, small_module):
        module, _unused = small_module
        design = HierarchicalDesign("incomplete", Die(100.0, 100.0))
        design.add_instance(ModuleInstance("m", module.model, 0.0, 0.0,
                                           netlist=module.netlist, placement=module.placement))
        design.add_primary_input("PI")
        design.add_primary_output("PO")
        with pytest.raises(HierarchyError):
            build_design_graph(design)


class TestAnalysis:
    def test_result_moments_are_positive(self, quad_design):
        result = analyze_hierarchical_design(quad_design)
        assert result.mean > 0.0
        assert result.std > 0.0
        assert result.mode is CorrelationMode.REPLACEMENT
        assert result.analysis_seconds > 0.0
        assert set(result.output_arrivals) == set(quad_design.primary_outputs)

    def test_cdf_and_quantiles(self, quad_design):
        result = analyze_hierarchical_design(quad_design)
        grid = np.linspace(result.mean - 4 * result.std, result.mean + 4 * result.std, 50)
        cdf = result.cdf(grid)
        assert cdf[0] < 0.01 and cdf[-1] > 0.99
        assert np.all(np.diff(cdf) >= -1e-12)
        assert result.quantile(0.5) == pytest.approx(result.mean, rel=1e-6)

    def test_global_only_has_smaller_sigma(self, quad_design):
        """Ignoring local correlation between modules shrinks the spread —
        the central observation of the paper's Fig. 7."""
        proposed = analyze_hierarchical_design(quad_design, CorrelationMode.REPLACEMENT)
        global_only = analyze_hierarchical_design(quad_design, CorrelationMode.GLOBAL_ONLY)
        assert global_only.std < proposed.std

    def test_proposed_matches_flattened_monte_carlo(self, quad_design, small_module):
        _unused, config = small_module
        proposed = analyze_hierarchical_design(quad_design, CorrelationMode.REPLACEMENT)
        reference = monte_carlo_hierarchical(
            quad_design, num_samples=config.monte_carlo_samples, seed=1,
            chunk_size=config.monte_carlo_chunk,
        )
        assert proposed.mean == pytest.approx(reference.mean, rel=0.05)
        assert proposed.std == pytest.approx(reference.std, rel=0.30)

    def test_proposed_closer_to_reference_than_global_only(self, quad_design, small_module):
        _unused, config = small_module
        proposed = analyze_hierarchical_design(quad_design, CorrelationMode.REPLACEMENT)
        global_only = analyze_hierarchical_design(quad_design, CorrelationMode.GLOBAL_ONLY)
        reference = monte_carlo_hierarchical(
            quad_design, num_samples=config.monte_carlo_samples, seed=2,
            chunk_size=config.monte_carlo_chunk,
        )
        assert abs(proposed.std - reference.std) < abs(global_only.std - reference.std)
