"""Tests of the independent-random-variable replacement (eq. 19)."""

import numpy as np
import pytest

from repro.core.correlation import covariance_matrix
from repro.hier.design import HierarchicalDesign, ModuleInstance
from repro.hier.grids import build_design_grids
from repro.hier.replacement import (
    block_diagonal_graph,
    design_pca,
    remap_model_graph,
    replacement_matrix,
    subblock_consistency_error,
)
from repro.model.extraction import extract_timing_model
from repro.variation.grid import Die


@pytest.fixture
def module_model(random_graph_and_variation):
    graph, variation = random_graph_and_variation
    return extract_timing_model(graph, variation, threshold=0.05)


@pytest.fixture
def abutted_design(module_model):
    die = module_model.die
    design = HierarchicalDesign("abutted", Die(2 * die.width, die.height))
    design.add_instance(ModuleInstance("a", module_model, 0.0, 0.0))
    design.add_instance(ModuleInstance("b", module_model, die.width, 0.0))
    return design


class TestDesignPca:
    def test_subblock_matches_module_correlation(self, abutted_design, module_model):
        grids = build_design_grids(abutted_design)
        for instance in abutted_design.instances:
            error = subblock_consistency_error(instance, grids, module_model.correlation)
            assert error < 1e-6

    def test_design_pca_reconstructs_design_correlation(self, abutted_design, module_model):
        grids = build_design_grids(abutted_design)
        pca = design_pca(grids, module_model.correlation)
        reconstructed = pca.reconstruct_covariance()
        assert np.allclose(np.diag(reconstructed), 1.0, atol=1e-6)


class TestReplacementMatrix:
    def test_shape(self, abutted_design, module_model):
        grids = build_design_grids(abutted_design)
        pca = design_pca(grids, module_model.correlation)
        matrix = replacement_matrix(abutted_design.instance("a"), grids, pca)
        assert matrix.shape == (module_model.pca.num_components, pca.num_components)

    def test_replacement_preserves_module_internal_covariance(
        self, abutted_design, module_model
    ):
        """Eq. 18/19: rewriting the variables must not change the covariance
        structure *within* a module."""
        grids = build_design_grids(abutted_design)
        pca = design_pca(grids, module_model.correlation)
        instance = abutted_design.instance("a")
        matrix = replacement_matrix(instance, grids, pca)
        remapped = remap_model_graph(instance, matrix, pca.num_components)

        original_delays = [edge.delay for edge in module_model.graph.edges][:12]
        remapped_delays = [edge.delay for edge in remapped.edges][:12]
        original_cov = covariance_matrix(original_delays)
        remapped_cov = covariance_matrix(remapped_delays)
        assert np.allclose(original_cov, remapped_cov, rtol=1e-3, atol=1e-6)

    def test_replacement_creates_cross_module_correlation(
        self, abutted_design, module_model
    ):
        """Edges of abutted instances must become correlated through the
        shared design-level variables (the whole point of Section V)."""
        grids = build_design_grids(abutted_design)
        pca = design_pca(grids, module_model.correlation)
        graphs = {}
        for name in ("a", "b"):
            instance = abutted_design.instance(name)
            matrix = replacement_matrix(instance, grids, pca)
            graphs[name] = remap_model_graph(instance, matrix, pca.num_components)
        edge_a = graphs["a"].edges[0].delay
        edge_b = graphs["b"].edges[0].delay
        correlation = edge_a.correlation(edge_b)
        # Neighbouring abutted modules: local correlation must be clearly
        # positive beyond the global floor contribution alone.
        global_only = (edge_a.global_coeff * edge_b.global_coeff) / (edge_a.std * edge_b.std)
        assert correlation > global_only + 0.01

    def test_remap_prefixes_vertices(self, abutted_design, module_model):
        grids = build_design_grids(abutted_design)
        pca = design_pca(grids, module_model.correlation)
        instance = abutted_design.instance("a")
        matrix = replacement_matrix(instance, grids, pca)
        remapped = remap_model_graph(instance, matrix, pca.num_components)
        assert all(vertex.startswith("a/") for vertex in remapped.vertices)
        assert remapped.num_edges == module_model.graph.num_edges
        assert remapped.num_locals == pca.num_components


class TestBlockDiagonal:
    def test_block_diagonal_keeps_internal_correlation(self, abutted_design, module_model):
        instance = abutted_design.instance("a")
        total = 2 * module_model.num_locals
        graph = block_diagonal_graph(instance, 0, total)
        original = module_model.graph.edges[0].delay
        copied = graph.edges[0].delay
        assert copied.nominal == original.nominal
        assert copied.variance == pytest.approx(original.variance)

    def test_block_diagonal_removes_cross_module_local_correlation(
        self, abutted_design, module_model
    ):
        total = 2 * module_model.num_locals
        graph_a = block_diagonal_graph(abutted_design.instance("a"), 0, total)
        graph_b = block_diagonal_graph(
            abutted_design.instance("b"), module_model.num_locals, total
        )
        edge_a = graph_a.edges[0].delay
        edge_b = graph_b.edges[0].delay
        # Only the shared global variable contributes.
        expected = edge_a.global_coeff * edge_b.global_coeff
        assert edge_a.covariance(edge_b) == pytest.approx(expected)
