"""Tests of the row-based placer."""

import pytest

from repro.errors import PlacementError
from repro.placement.placer import Placement, die_for_netlist, place_netlist
from repro.variation.grid import Die


class TestDieSizing:
    def test_die_area_scales_with_utilization(self, tiny_netlist, library):
        tight = die_for_netlist(tiny_netlist, library, utilization=1.0)
        loose = die_for_netlist(tiny_netlist, library, utilization=0.5)
        assert loose.area > tight.area

    def test_invalid_utilization(self, tiny_netlist):
        with pytest.raises(PlacementError):
            die_for_netlist(tiny_netlist, utilization=0.0)

    def test_die_without_library_uses_unit_areas(self, tiny_netlist):
        die = die_for_netlist(tiny_netlist, None, utilization=1.0)
        assert die.area >= tiny_netlist.num_gates


class TestPlacement:
    def test_every_gate_and_input_is_placed(self, tiny_netlist, library):
        placement = place_netlist(tiny_netlist, library)
        for gate in tiny_netlist.gates:
            assert gate.name in placement
        for net in tiny_netlist.primary_inputs:
            assert net in placement

    def test_all_locations_inside_die(self, small_random_netlist, library):
        placement = place_netlist(small_random_netlist, library)
        die = placement.die
        for name, (x, y) in placement.locations.items():
            assert die.contains(x, y), name

    def test_missing_location_raises(self, tiny_netlist, library):
        placement = place_netlist(tiny_netlist, library)
        with pytest.raises(PlacementError):
            placement.location("ghost")

    def test_locations_view_is_read_only_and_live(self, tiny_netlist, library):
        placement = place_netlist(tiny_netlist, library)
        view = placement.locations
        with pytest.raises(TypeError):
            view["ghost"] = (0.0, 0.0)
        # The view is a zero-copy window, not a snapshot copy.
        assert placement.locations is not None
        assert len(view) == len(placement)
        assert dict(view) == dict(placement.locations)

    def test_connected_gates_are_nearby(self, small_random_netlist, library):
        # Topological row placement keeps drivers and loads in nearby rows.
        placement = place_netlist(small_random_netlist, library)
        die = placement.die
        total, count = 0.0, 0
        for gate in small_random_netlist.gates:
            gx, gy = placement.location(gate.name)
            for net in gate.inputs:
                driver = small_random_netlist.driver(net)
                if driver is None:
                    continue
                dx, dy = placement.location(driver.name)
                total += abs(gx - dx) + abs(gy - dy)
                count += 1
        average_distance = total / count
        assert average_distance < (die.width + die.height) / 2.0

    def test_explicit_die_is_used(self, tiny_netlist, library):
        die = Die(50.0, 50.0)
        placement = place_netlist(tiny_netlist, library, die=die)
        assert placement.die is die

    def test_shifted_translates_and_prefixes(self, tiny_netlist, library):
        placement = place_netlist(tiny_netlist, library)
        shifted = placement.shifted(10.0, 5.0, prefix="m0/")
        x, y = placement.location("u1")
        sx, sy = shifted.location("m0/u1")
        assert (sx, sy) == (x + 10.0, y + 5.0)
        assert shifted.die.origin_x == placement.die.origin_x + 10.0

    def test_len(self, tiny_netlist, library):
        placement = place_netlist(tiny_netlist, library)
        assert len(placement) == tiny_netlist.num_gates + len(tiny_netlist.primary_inputs)
