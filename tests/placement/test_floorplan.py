"""Tests of module floorplanning."""

import pytest

from repro.errors import HierarchyError
from repro.placement.floorplan import Floorplan, ModulePlacement
from repro.variation.grid import Die


@pytest.fixture
def module_die() -> Die:
    return Die(10.0, 10.0)


class TestModulePlacement:
    def test_bounds(self, module_die):
        placement = ModulePlacement("m0", module_die, 5.0, 7.0)
        assert placement.bounds == (5.0, 7.0, 15.0, 17.0)

    def test_overlap_detection(self, module_die):
        a = ModulePlacement("a", module_die, 0.0, 0.0)
        b = ModulePlacement("b", module_die, 5.0, 5.0)
        c = ModulePlacement("c", module_die, 10.0, 0.0)
        assert a.overlaps(b)
        assert not a.overlaps(c)  # abutment is not overlap


class TestFloorplan:
    def test_add_and_lookup(self, module_die):
        floorplan = Floorplan(Die(30.0, 30.0))
        floorplan.add(ModulePlacement("m0", module_die, 0.0, 0.0))
        assert "m0" in floorplan
        assert floorplan.placement("m0").origin_x == 0.0
        assert len(floorplan) == 1

    def test_duplicate_instance_rejected(self, module_die):
        floorplan = Floorplan(Die(30.0, 30.0))
        floorplan.add(ModulePlacement("m0", module_die, 0.0, 0.0))
        with pytest.raises(HierarchyError):
            floorplan.add(ModulePlacement("m0", module_die, 15.0, 15.0))

    def test_out_of_die_rejected(self, module_die):
        floorplan = Floorplan(Die(15.0, 15.0))
        with pytest.raises(HierarchyError):
            floorplan.add(ModulePlacement("m0", module_die, 10.0, 0.0))

    def test_overlap_rejected(self, module_die):
        floorplan = Floorplan(Die(30.0, 30.0))
        floorplan.add(ModulePlacement("m0", module_die, 0.0, 0.0))
        with pytest.raises(HierarchyError):
            floorplan.add(ModulePlacement("m1", module_die, 5.0, 5.0))

    def test_unknown_instance(self, module_die):
        floorplan = Floorplan(Die(30.0, 30.0))
        with pytest.raises(HierarchyError):
            floorplan.placement("nope")

    def test_covered_by_module(self, module_die):
        floorplan = Floorplan(Die(30.0, 30.0))
        floorplan.add(ModulePlacement("m0", module_die, 0.0, 0.0))
        assert floorplan.covered_by_module(5.0, 5.0) == "m0"
        assert floorplan.covered_by_module(25.0, 25.0) is None

    def test_abutted_grid_layout(self, module_die):
        floorplan = Floorplan.abutted_grid(module_die, rows=2, columns=2)
        assert len(floorplan) == 4
        assert floorplan.die.width == 20.0
        assert floorplan.die.height == 20.0
        assert floorplan.placement("m1_1").origin_x == 10.0
        assert floorplan.placement("m1_1").origin_y == 10.0

    def test_abutted_grid_custom_names(self, module_die):
        floorplan = Floorplan.abutted_grid(module_die, 1, 2, ["left", "right"])
        assert floorplan.instance_names == ("left", "right")

    def test_abutted_grid_invalid(self, module_die):
        with pytest.raises(HierarchyError):
            Floorplan.abutted_grid(module_die, 0, 2)
