"""Tests of the incremental Monte Carlo session.

A :class:`~repro.montecarlo.MonteCarloSession` patched through any journal
window must end up with exactly the sample matrix — and therefore exactly
the delay distribution — a cold session would draw from the edited graph:
the counter-based per-edge streams make warm and cold runs agree to
floating-point round-off (asserted at 1e-9 on randomized retime bursts and
structural edits over the c17/mult4/c432 acceptance circuits).
"""

import random

import numpy as np
import pytest

from repro.analysis.yield_analysis import monte_carlo_yield_curve
from repro.core.canonical import CanonicalForm
from repro.errors import TimingGraphError
from repro.montecarlo.flat import MonteCarloSession, simulate_graph_delay
from repro.timing.graph import TimingGraph

PARITY = 1e-9
SAMPLES = 300


@pytest.fixture
def edit_graph(parity_module) -> TimingGraph:
    """A fresh mutable copy per test (copy() preserves edge ids)."""
    return parity_module[0].copy()


def _assert_warm_matches_cold(session: MonteCarloSession, graph: TimingGraph):
    """Returns the refresh kind the warm revalidation consumed."""
    warm = session.revalidate()
    kind = session.last_refresh.kind
    cold_session = MonteCarloSession(
        graph.copy(), num_samples=session.num_samples, seed=session.seed
    )
    cold = cold_session.revalidate()
    worst = float(np.abs(warm.samples - cold.samples).max())
    assert worst <= PARITY, "warm session deviates from cold by %.3e" % worst
    matrix_gap = float(
        np.abs(session.edge_delay_samples - cold_session.edge_delay_samples).max()
    )
    assert matrix_gap <= PARITY
    return kind


class TestSessionLifecycle:
    def test_initial_result_matches_distribution(self, parity_module):
        graph = parity_module[0].copy()
        session = MonteCarloSession(graph, num_samples=1000, seed=5)
        result = session.revalidate()
        oneshot = simulate_graph_delay(graph, 1000, seed=5)
        # Different stream layouts: agreement is statistical, not bitwise.
        assert result.mean == pytest.approx(oneshot.mean, rel=0.05)
        assert result.std == pytest.approx(oneshot.std, rel=0.3)

    def test_noop_returns_cached_result(self, edit_graph):
        session = MonteCarloSession(edit_graph, num_samples=SAMPLES, seed=1)
        first = session.revalidate()
        again = session.revalidate()
        assert again is first
        assert session.last_refresh.kind == "noop"

    def test_requires_io_and_positive_samples(self):
        graph = TimingGraph("no_io")
        graph.add_edge("a", "b", CanonicalForm.constant(1.0))
        with pytest.raises(TimingGraphError):
            MonteCarloSession(graph)
        graph.mark_input("a")
        graph.mark_output("b")
        with pytest.raises(ValueError):
            MonteCarloSession(graph, num_samples=0)

    def test_chunk_size_does_not_change_session_samples(self, edit_graph):
        wide = MonteCarloSession(edit_graph, num_samples=SAMPLES, seed=3)
        narrow = MonteCarloSession(
            edit_graph, num_samples=SAMPLES, seed=3, chunk_size=17
        )
        assert np.array_equal(
            wide.revalidate().samples, narrow.revalidate().samples
        )


class TestRetimeParity:
    def test_randomized_retime_bursts_match_cold(self, edit_graph):
        rng = random.Random(7)
        session = MonteCarloSession(edit_graph, num_samples=SAMPLES, seed=2)
        session.revalidate()
        for burst in range(4):
            for _unused in range(rng.randrange(1, 4)):
                edge = rng.choice(edit_graph.edges)
                edit_graph.replace_edge_delay(
                    edge, edge.delay.scale(rng.uniform(0.7, 1.3))
                )
            assert _assert_warm_matches_cold(session, edit_graph) == "rows"

    def test_retime_parity_without_arrival_cache(self, edit_graph):
        session = MonteCarloSession(
            edit_graph, num_samples=SAMPLES, seed=2, cache_arrivals=False
        )
        session.revalidate()
        edge = edit_graph.edges[len(edit_graph.edges) // 2]
        edit_graph.replace_edge_delay(edge, edge.delay.scale(1.2))
        _assert_warm_matches_cold(session, edit_graph)

    def test_only_retimed_rows_resampled(self, edit_graph):
        session = MonteCarloSession(edit_graph, num_samples=SAMPLES, seed=4)
        before = session.edge_delay_samples.copy()
        edges = [edit_graph.edges[0], edit_graph.edges[-1]]
        for edge in edges:
            edit_graph.replace_edge_delay(edge, edge.delay.scale(1.1))
        refresh = session.refresh()
        assert refresh.kind == "rows"
        assert refresh.resampled_rows == len(edges)
        rows = [session.arrays.edge_rows[edge.edge_id] for edge in edges]
        untouched = np.ones(before.shape[0], dtype=bool)
        untouched[rows] = False
        assert np.array_equal(
            session.edge_delay_samples[untouched], before[untouched]
        )
        assert not np.allclose(session.edge_delay_samples[rows], before[rows])


class TestStructuralParity:
    def test_remove_and_add_edges_match_cold(self, edit_graph):
        rng = random.Random(11)
        session = MonteCarloSession(edit_graph, num_samples=SAMPLES, seed=6)
        session.revalidate()
        edit_graph.remove_edge(rng.choice(edit_graph.edges))
        order = edit_graph.topological_order()
        i = rng.randrange(0, len(order) - 1)
        j = rng.randrange(i + 1, len(order))
        edit_graph.add_edge(
            order[i], order[j], CanonicalForm(9.0, 0.5, None, 0.25)
        )
        assert _assert_warm_matches_cold(session, edit_graph) == "structure"
        # A retime right after the structural window is warm again.
        edge = edit_graph.edges[0]
        edit_graph.replace_edge_delay(edge, edge.delay.scale(1.05))
        assert _assert_warm_matches_cold(session, edit_graph) == "rows"

    def test_io_change_falls_back_to_full_resample(self, edit_graph):
        session = MonteCarloSession(edit_graph, num_samples=SAMPLES, seed=8)
        session.revalidate()
        internal = next(
            name
            for name in edit_graph.topological_order()
            if not edit_graph.is_output(name) and edit_graph.fanin_edges(name)
        )
        edit_graph.mark_output(internal)
        assert _assert_warm_matches_cold(session, edit_graph) == "full"


class TestYieldRouting:
    def test_yield_curve_from_graph_and_session(self, adder_graph):
        from_graph = monte_carlo_yield_curve(adder_graph, num_samples=400, seed=3)
        session = MonteCarloSession(adder_graph, num_samples=400, seed=3)
        from_session = monte_carlo_yield_curve(session)
        for curve in (from_graph, from_session):
            assert curve.yields[0] == pytest.approx(0.0, abs=0.01)
            assert curve.yields[-1] == pytest.approx(1.0, abs=0.01)
            assert np.all(np.diff(curve.yields) >= 0.0)
        result = session.revalidate()
        from_result = monte_carlo_yield_curve(result)
        assert np.array_equal(from_session.yields, from_result.yields)


class TestDesignTimerRevalidation:
    @pytest.fixture(scope="class")
    def quad_design(self):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.figure7 import (
            build_multiplier_design,
            build_multiplier_module,
        )

        config = ExperimentConfig(monte_carlo_samples=200)
        module = build_multiplier_module(bits=2, config=config)
        return module, build_multiplier_design(module)

    def test_noop_and_delay_only_revalidation(self, quad_design):
        from repro.hier.analysis import DesignTimer
        from repro.montecarlo.hierarchical import build_flat_timing_graph
        from repro.placement.placer import Placement

        module, design = quad_design
        timer = DesignTimer(design)
        first = timer.revalidate_monte_carlo(num_samples=200, seed=5)
        assert timer.monte_carlo_session is not None
        again = timer.revalidate_monte_carlo(num_samples=200, seed=5)
        assert again is first

        # Same model, gates shifted by one grid pitch: the re-flattened
        # graph keeps its structure, only delays move -> warm retimes.
        pitch = module.variation.partition.grid_size
        shifted = Placement(
            module.placement.die,
            {
                name: (min(x + pitch, module.placement.die.width), y)
                for name, (x, y) in module.placement.locations.items()
            },
        )
        timer.swap_instance_model(
            "m0_1", module.model, netlist=module.netlist, placement=shifted
        )
        warm = timer.revalidate_monte_carlo(num_samples=200, seed=5)
        assert timer.monte_carlo_session.last_refresh.kind in ("rows", "noop")
        cold = MonteCarloSession(
            build_flat_timing_graph(design), num_samples=200, seed=5
        ).revalidate()
        assert float(np.abs(warm.samples - cold.samples).max()) <= PARITY

    def test_changed_parameters_rebind_a_fresh_session(self, quad_design):
        from repro.hier.analysis import DesignTimer

        _module, design = quad_design
        timer = DesignTimer(design)
        first = timer.revalidate_monte_carlo(num_samples=120, seed=5)
        session = timer.monte_carlo_session
        other = timer.revalidate_monte_carlo(num_samples=120, seed=6)
        assert timer.monte_carlo_session is not session
        assert not np.array_equal(first.samples, other.samples)


class TestMemoryReport:
    def test_nbytes_report_tracks_session_caches(self, adder_graph):
        session = MonteCarloSession(adder_graph, num_samples=64, seed=3)
        before = session.nbytes_report()
        assert before["delay_samples"] > 0
        assert before["arrival_cache"] == 0
        assert before["graph_arrays"] > 0
        assert before["total"] == sum(
            value for key, value in before.items() if key != "total"
        )
        session.revalidate()
        after = session.nbytes_report()
        assert after["arrival_cache"] > 0
        assert after["total"] > before["total"]
