"""Property-based parity suite of the levelized Monte Carlo engine.

The level-scheduled kernels replace only the *order* in which per-sample
longest-path candidates are folded — ``+`` and ``max`` are exact, so on
*any* graph the levelized engines must produce **bit-identical** samples to
the object-level reference for the same seed and chunk size.  Asserted
here on hypothesis-randomized layered DAGs (including dangling inputs,
unreachable vertices and single-IO corners), on the multi-source
``(V, I, chunk)`` kernel against the one-propagation-per-input reference,
and on the empty-IO / unreachable regressions.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.canonical import CanonicalForm
from repro.errors import TimingGraphError
from repro.montecarlo.flat import (
    AUTO_LEVELIZED_MIN_EDGES,
    MC_MAX_CHUNK,
    MC_MIN_CHUNK,
    MC_SAMPLE_BLOCK,
    _longest_paths_multi_source,
    _longest_paths_object,
    _resolve_engine,
    auto_chunk_size,
    simulate_graph_delay,
    simulate_io_delays,
)
from repro.timing.arrays import GraphArrays
from repro.timing.graph import TimingGraph

NUM_LOCALS = 2


def _build_graph(seed, num_inputs, num_outputs, num_internal):
    """A random layered DAG with designated inputs/outputs.

    Every non-input vertex receives 1-3 fanin edges from topologically
    earlier non-output vertices, so each output is reachable while some
    inputs (and internal vertices) may dangle — which exercises the
    ``-inf`` masking and the structural validity masks of both engines.
    """
    rng = np.random.default_rng(seed)
    graph = TimingGraph("mc%d" % seed, NUM_LOCALS)
    inputs = ["i%d" % position for position in range(num_inputs)]
    outputs = ["o%d" % position for position in range(num_outputs)]
    internal = ["v%d" % position for position in range(num_internal)]
    for name in inputs:
        graph.mark_input(name)
    for name in outputs:
        graph.mark_output(name)
    sources = inputs + internal  # outputs stay pure sinks

    def _delay():
        return CanonicalForm(
            float(rng.uniform(1.0, 20.0)),
            float(rng.uniform(0.0, 1.5)),
            [float(value) for value in rng.uniform(-1.0, 1.0, NUM_LOCALS)],
            float(rng.uniform(0.0, 1.5)),
        )

    for position, name in enumerate(internal + outputs):
        limit = num_inputs + min(position, num_internal)
        for _unused in range(int(rng.integers(1, 4))):
            graph.add_edge(sources[int(rng.integers(0, limit))], name, _delay())
    return graph


def _assert_io_identical(a, b):
    assert np.array_equal(a.valid, b.valid)
    assert np.array_equal(a.means, b.means, equal_nan=True)
    assert np.array_equal(a.stds, b.stds, equal_nan=True)


class TestRandomizedParity:
    @given(
        seed=st.integers(min_value=0, max_value=10 ** 6),
        num_inputs=st.integers(min_value=1, max_value=5),
        num_outputs=st.integers(min_value=1, max_value=4),
        num_internal=st.integers(min_value=0, max_value=24),
        chunk=st.sampled_from([None, 7, 64]),
    )
    @settings(max_examples=25, deadline=None)
    def test_graph_delay_engines_bit_identical(
        self, seed, num_inputs, num_outputs, num_internal, chunk
    ):
        graph = _build_graph(seed, num_inputs, num_outputs, num_internal)
        levelized = simulate_graph_delay(
            graph, 50, seed=seed, chunk_size=chunk, engine="levelized"
        )
        reference = simulate_graph_delay(
            graph, 50, seed=seed, chunk_size=chunk, engine="object"
        )
        assert np.array_equal(levelized.samples, reference.samples)

    @given(
        seed=st.integers(min_value=0, max_value=10 ** 6),
        num_inputs=st.integers(min_value=1, max_value=5),
        num_outputs=st.integers(min_value=1, max_value=4),
        num_internal=st.integers(min_value=0, max_value=24),
    )
    @settings(max_examples=25, deadline=None)
    def test_io_delay_engines_bit_identical(
        self, seed, num_inputs, num_outputs, num_internal
    ):
        graph = _build_graph(seed, num_inputs, num_outputs, num_internal)
        levelized = simulate_io_delays(graph, 40, seed=seed, engine="levelized")
        reference = simulate_io_delays(graph, 40, seed=seed, engine="object")
        _assert_io_identical(levelized, reference)

    @given(seed=st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=15, deadline=None)
    def test_multi_source_kernel_matches_per_input_reference(self, seed):
        graph = _build_graph(seed, 4, 3, 12)
        arrays = GraphArrays.from_graph(graph)
        rng = np.random.default_rng(seed)
        delays = arrays.edge_batch.sample(rng, 23)
        input_rows = arrays.input_rows
        multi = _longest_paths_multi_source(arrays, delays, input_rows)
        for position, row in enumerate(input_rows):
            reference = _longest_paths_object(
                arrays, delays, np.asarray([row], dtype=np.int64)
            )
            assert np.array_equal(multi[:, position, :], reference)


class TestAcceptanceCircuits:
    def test_engines_bit_identical_on_parity_modules(self, parity_module):
        graph = parity_module[0]
        levelized = simulate_graph_delay(graph, 200, seed=9, engine="levelized")
        reference = simulate_graph_delay(graph, 200, seed=9, engine="object")
        assert np.array_equal(levelized.samples, reference.samples)
        lev_io = simulate_io_delays(graph, 60, seed=9, engine="levelized")
        ref_io = simulate_io_delays(graph, 60, seed=9, engine="object")
        _assert_io_identical(lev_io, ref_io)

    def test_prebuilt_arrays_reuse_is_bit_identical(self, parity_module):
        graph = parity_module[0]
        arrays = GraphArrays.from_graph(graph)
        rebuilt = simulate_graph_delay(graph, 200, seed=9, engine="levelized")
        reused = simulate_graph_delay(
            graph, 200, seed=9, engine="levelized", arrays=arrays
        )
        assert np.array_equal(rebuilt.samples, reused.samples)
        rebuilt_io = simulate_io_delays(graph, 60, seed=9, engine="levelized")
        reused_io = simulate_io_delays(
            graph, 60, seed=9, engine="levelized", arrays=arrays
        )
        _assert_io_identical(rebuilt_io, reused_io)


class TestRegressions:
    def test_missing_io_raises(self):
        graph = TimingGraph("no_io")
        graph.add_edge("a", "b", CanonicalForm.constant(1.0))
        with pytest.raises(TimingGraphError):
            simulate_graph_delay(graph, 10, engine="levelized")
        with pytest.raises(TimingGraphError):
            simulate_io_delays(graph, 10, engine="levelized")
        graph.mark_input("a")  # outputs still missing
        with pytest.raises(TimingGraphError):
            simulate_graph_delay(graph, 10, engine="levelized")

    def test_unknown_engine_rejected(self, adder_graph):
        with pytest.raises(ValueError):
            simulate_graph_delay(adder_graph, 10, engine="turbo")

    def test_auto_selects_by_edge_count(self):
        assert _resolve_engine("auto", AUTO_LEVELIZED_MIN_EDGES) == "levelized"
        assert _resolve_engine("auto", AUTO_LEVELIZED_MIN_EDGES - 1) == "object"
        assert _resolve_engine("levelized", 1) == "levelized"
        assert _resolve_engine("object", 10 ** 6) == "object"

    def test_unreachable_vertices_stay_masked(self):
        """Dangling inputs and unreachable outputs must not poison stats."""
        graph = TimingGraph("partial")
        graph.mark_input("a")
        graph.mark_input("b")  # dangling: drives nothing
        graph.mark_output("y")
        graph.mark_output("z")  # unreachable: driven by nothing
        graph.add_edge("a", "m", CanonicalForm.constant(3.0))
        graph.add_edge("m", "y", CanonicalForm.constant(4.0))
        graph.add_vertex("orphan")
        for engine in ("levelized", "object"):
            stats = simulate_io_delays(graph, 32, seed=1, engine=engine)
            assert stats.valid.tolist() == [[True, False], [False, False]]
            assert stats.mean("a", "y") == pytest.approx(7.0)
            assert np.isnan(stats.mean("b", "y"))
            assert np.isnan(stats.mean("a", "z"))
            result = simulate_graph_delay(graph, 32, seed=1, engine=engine)
            assert np.all(result.samples == pytest.approx(7.0))

    def test_io_statistics_reject_unknown_names(self):
        graph = TimingGraph("tiny_io")
        graph.mark_input("a")
        graph.mark_output("z")
        graph.add_edge("a", "z", CanonicalForm.constant(2.0))
        stats = simulate_io_delays(graph, 16, seed=0)
        assert stats.mean("a", "z") == pytest.approx(2.0)
        assert stats.std("a", "z") == pytest.approx(0.0)
        with pytest.raises(ValueError):
            stats.mean("nope", "z")
        with pytest.raises(ValueError):
            stats.std("a", "nope")

    def test_input_that_is_also_output(self):
        graph = TimingGraph("through")
        graph.mark_input("a")
        graph.mark_output("a")
        graph.mark_output("z")
        graph.add_edge("a", "z", CanonicalForm.constant(5.0))
        for engine in ("levelized", "object"):
            result = simulate_graph_delay(graph, 16, seed=2, engine=engine)
            assert np.all(result.samples == pytest.approx(5.0))


class TestAutoChunkSize:
    def test_bounds_and_clipping(self):
        assert auto_chunk_size(10, 10) == MC_MAX_CHUNK
        assert auto_chunk_size(10, 10, num_samples=100) == 100
        # A huge multi-source working set drops below the floor: the
        # budget outranks MC_MIN_CHUNK but never the sample block — the
        # sampler materialises whole blocks regardless, so a smaller chunk
        # only adds redundant draws.
        assert auto_chunk_size(10 ** 6, 10 ** 6, num_sources=500) == (
            MC_SAMPLE_BLOCK
        )

    def test_budget_always_bounds_the_working_set(self):
        # At every extreme geometry the chosen chunk's working set honours
        # the float budget whenever a whole-block chunk can (one sample
        # block is the hard floor: the sampler's own working set), and the
        # chunk covers whole sample blocks so no block is drawn twice.
        from repro.montecarlo.flat import mc_chunk_budget

        budget = mc_chunk_budget()
        for edges, vertices, sources in [
            (10 ** 6, 5 * 10 ** 5, 1),
            (10 ** 6, 10 ** 6, 32),
            (10 ** 5, 10 ** 5, 500),
            (10, 10, 1),
        ]:
            chunk = auto_chunk_size(edges, vertices, num_sources=sources)
            per_sample = edges + (vertices + edges) * sources
            assert chunk >= MC_SAMPLE_BLOCK
            assert chunk % MC_SAMPLE_BLOCK == 0
            assert chunk * per_sample <= max(
                budget, MC_SAMPLE_BLOCK * per_sample
            )

    def test_budget_env_override_shrinks_chunk(self, monkeypatch):
        monkeypatch.setenv("REPRO_MC_CHUNK_BUDGET", "100")
        assert auto_chunk_size(10 ** 4, 10 ** 4) == MC_SAMPLE_BLOCK
        monkeypatch.setenv("REPRO_MC_CHUNK_BUDGET", "bogus")
        with pytest.raises(ValueError):
            auto_chunk_size(10, 10)

    def test_million_edge_chunk_stays_block_aligned(self):
        # Regression for the 10^6-edge throughput collapse: the budget
        # used to drive the chunk to 1 here, so every chunk re-drew its
        # whole 128-sample block for one column (~27x redundant sampling
        # at the BENCH_scaling 10^6-edge shape).
        assert auto_chunk_size(10 ** 6, 5 * 10 ** 5) == MC_SAMPLE_BLOCK
        # num_samples still clips last: short runs keep one exact chunk.
        assert auto_chunk_size(10 ** 6, 5 * 10 ** 5, num_samples=16) == 16

    def test_multi_source_axis_shrinks_the_chunk(self):
        single = auto_chunk_size(5000, 3000, num_sources=1)
        multi = auto_chunk_size(5000, 3000, num_sources=100)
        assert multi < single

    def test_explicit_chunk_size_wins(self, adder_graph):
        explicit = simulate_graph_delay(adder_graph, 64, seed=4, chunk_size=64)
        again = simulate_graph_delay(adder_graph, 64, seed=4, chunk_size=64)
        assert np.array_equal(explicit.samples, again.samples)
        with pytest.raises(ValueError):
            simulate_graph_delay(adder_graph, 64, seed=4, chunk_size=0)

    def test_auto_chunk_is_deterministic(self, adder_graph):
        a = simulate_graph_delay(adder_graph, 300, seed=6)
        b = simulate_graph_delay(adder_graph, 300, seed=6)
        assert np.array_equal(a.samples, b.samples)
