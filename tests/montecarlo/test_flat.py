"""Tests of the vectorized Monte Carlo simulator."""

import numpy as np
import pytest

from repro.core.canonical import CanonicalForm
from repro.errors import TimingGraphError
from repro.montecarlo.flat import simulate_graph_delay, simulate_io_delays
from repro.timing.allpairs import AllPairsTiming
from repro.timing.graph import TimingGraph
from repro.timing.propagation import circuit_delay


def _deterministic_graph() -> TimingGraph:
    graph = TimingGraph("det")
    graph.mark_input("a")
    graph.mark_output("z")
    graph.add_edge("a", "m", CanonicalForm.constant(10.0))
    graph.add_edge("m", "z", CanonicalForm.constant(5.0))
    graph.add_edge("a", "z", CanonicalForm.constant(12.0))
    return graph


class TestSimulateGraphDelay:
    def test_deterministic_graph_has_zero_spread(self):
        result = simulate_graph_delay(_deterministic_graph(), num_samples=100, seed=0)
        assert result.mean == pytest.approx(15.0)
        assert result.std == pytest.approx(0.0)
        assert result.num_samples == 100

    def test_requires_io(self):
        graph = TimingGraph("no_io")
        graph.add_edge("a", "b", CanonicalForm.constant(1.0))
        with pytest.raises(TimingGraphError):
            simulate_graph_delay(graph, 10)

    def test_invalid_sample_count(self):
        with pytest.raises(ValueError):
            simulate_graph_delay(_deterministic_graph(), 0)

    def test_reproducible_with_seed(self, adder_graph):
        a = simulate_graph_delay(adder_graph, 500, seed=7)
        b = simulate_graph_delay(adder_graph, 500, seed=7)
        assert np.array_equal(a.samples, b.samples)

    def test_chunking_does_not_change_samples(self, adder_graph):
        whole = simulate_graph_delay(adder_graph, 1000, seed=3, chunk_size=1000)
        chunked = simulate_graph_delay(adder_graph, 1000, seed=3, chunk_size=128)
        # Sampling is counter-based per block: chunking is bit-invariant.
        assert np.array_equal(whole.samples, chunked.samples)

    def test_matches_ssta_moments(self, adder_graph):
        result = simulate_graph_delay(adder_graph, 4000, seed=1)
        analytical = circuit_delay(adder_graph)
        assert result.mean == pytest.approx(analytical.mean, rel=0.03)
        assert result.std == pytest.approx(analytical.std, rel=0.15)

    def test_cdf_and_quantiles(self, adder_graph):
        result = simulate_graph_delay(adder_graph, 2000, seed=5)
        median = result.quantile(0.5)
        assert result.cdf(np.array([median]))[0] == pytest.approx(0.5, abs=0.02)
        counts, _edges = result.histogram(bins=20)
        assert counts.sum() == 2000


class TestSimulateIoDelays:
    def test_deterministic_values(self):
        stats = simulate_io_delays(_deterministic_graph(), num_samples=50, seed=0)
        assert stats.mean("a", "z") == pytest.approx(15.0)
        assert stats.std("a", "z") == pytest.approx(0.0)

    def test_unreachable_pairs_are_nan(self):
        graph = TimingGraph("partial")
        graph.mark_input("a")
        graph.mark_input("b")
        graph.mark_output("y")
        graph.mark_output("z")
        graph.add_edge("a", "y", CanonicalForm.constant(3.0))
        graph.add_edge("b", "z", CanonicalForm.constant(4.0))
        stats = simulate_io_delays(graph, num_samples=64, seed=0)
        assert np.isnan(stats.mean("a", "z"))
        assert stats.mean("b", "z") == pytest.approx(4.0)
        assert stats.valid[0, 0] and not stats.valid[0, 1]

    def test_matches_allpairs_ssta(self, adder_graph):
        stats = simulate_io_delays(adder_graph, num_samples=3000, seed=2)
        analysis = AllPairsTiming.analyze(adder_graph)
        mask = analysis.matrix_valid
        assert np.allclose(stats.means[mask], analysis.matrix_means()[mask], rtol=0.05)

    def test_chunked_runs_agree(self, adder_graph):
        a = simulate_io_delays(adder_graph, 800, seed=9, chunk_size=800)
        b = simulate_io_delays(adder_graph, 800, seed=9, chunk_size=100)
        # Sampling is counter-based per block and the per-block moment
        # partials fold in ascending block order: chunking is bit-invariant.
        assert np.array_equal(a.means, b.means, equal_nan=True)
        assert np.array_equal(a.stds, b.stds, equal_nan=True)
