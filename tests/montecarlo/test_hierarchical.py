"""Tests of design flattening and the hierarchical Monte Carlo reference."""

import pytest

from repro.errors import HierarchyError
from repro.experiments.config import ExperimentConfig
from repro.experiments.figure7 import build_multiplier_design, build_multiplier_module
from repro.hier.design import HierarchicalDesign, ModuleInstance
from repro.montecarlo.hierarchical import (
    build_flat_timing_graph,
    flat_edge_batch,
    flatten_design,
    monte_carlo_hierarchical,
)
from repro.timing.arrays import GraphArrays
from repro.variation.grid import Die


@pytest.fixture(scope="module")
def quad():
    config = ExperimentConfig(monte_carlo_samples=500, monte_carlo_chunk=250)
    module = build_multiplier_module(bits=4, config=config)
    return module, build_multiplier_design(module)


class TestFlattenDesign:
    def test_flat_netlist_size(self, quad):
        module, design = quad
        flat, placement = flatten_design(design)
        assert flat.num_gates == 4 * module.netlist.num_gates
        assert len(flat.primary_inputs) == len(design.primary_inputs)
        assert len(flat.primary_outputs) == len(design.primary_outputs)
        flat.validate()

    def test_flat_placement_is_translated(self, quad):
        module, design = quad
        _flat, placement = flatten_design(design)
        instance = design.instances[-1]
        gate = module.netlist.gates[0]
        original_x, original_y = module.placement.location(gate.name)
        flat_x, flat_y = placement.location(instance.prefix + gate.name)
        assert flat_x == pytest.approx(original_x + instance.origin_x)
        assert flat_y == pytest.approx(original_y + instance.origin_y)

    def test_cross_connections_are_aliased(self, quad):
        module, design = quad
        flat, _placement = flatten_design(design)
        # Inputs of second-column multipliers are driven by gate outputs of
        # the first column, so no net named "m0_1/A0" may remain undriven.
        for gate in flat.gates:
            for net in gate.inputs:
                assert flat.driver(net) is not None or net in flat.primary_inputs

    def test_nonzero_interconnect_delay_rejected(self, quad):
        module, _design = quad
        design = HierarchicalDesign("delayed", Die(500.0, 500.0))
        design.add_instance(
            ModuleInstance("m", module.model, 0.0, 0.0, netlist=module.netlist,
                           placement=module.placement)
        )
        for port in module.model.inputs:
            design.add_primary_input("PI_%s" % port)
            design.connect("PI_%s" % port, "m/%s" % port, delay=0.0)
        for port in module.model.outputs:
            design.add_primary_output("PO_%s" % port)
            design.connect("m/%s" % port, "PO_%s" % port, delay=5.0)
        with pytest.raises(HierarchyError):
            flatten_design(design)

    def test_missing_netlist_rejected(self, quad):
        module, _design = quad
        design = HierarchicalDesign("no_netlist", Die(500.0, 500.0))
        design.add_instance(ModuleInstance("m", module.model, 0.0, 0.0))
        for port in module.model.inputs:
            design.add_primary_input("PI_%s" % port)
            design.connect("PI_%s" % port, "m/%s" % port)
        for port in module.model.outputs:
            design.add_primary_output("PO_%s" % port)
            design.connect("m/%s" % port, "PO_%s" % port)
        with pytest.raises(HierarchyError):
            flatten_design(design)


class TestFlatTimingGraph:
    def test_graph_size_matches_flat_netlist(self, quad):
        _module, design = quad
        flat, _placement = flatten_design(design)
        graph = build_flat_timing_graph(design)
        assert graph.num_edges == flat.num_connections
        assert graph.num_vertices == len(flat.primary_inputs) + flat.num_gates

    def test_monte_carlo_runs(self, quad):
        _module, design = quad
        result = monte_carlo_hierarchical(design, num_samples=300, seed=0, chunk_size=150)
        assert result.num_samples == 300
        assert result.mean > 0.0
        assert result.std > 0.0

    def test_flat_edge_batch_matches_graph(self, quad):
        import numpy as np

        _module, design = quad
        batch = flat_edge_batch(design)
        arrays = GraphArrays.from_graph(build_flat_timing_graph(design))
        assert len(batch) == arrays.edge_mean.shape[0]
        assert np.array_equal(batch.nominal, arrays.edge_mean)
        assert np.array_equal(batch.corr, arrays.edge_corr)
        assert np.array_equal(batch.random_var, arrays.edge_randvar)
        # The batch is what the simulator samples from.
        samples = batch.sample(np.random.default_rng(0), 200)
        assert samples.shape == (len(batch), 200)
        assert np.allclose(samples.mean(axis=1), batch.nominal, atol=4.0 * batch.std.max())
