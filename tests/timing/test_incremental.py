"""Incremental-vs-full parity tests for the revisioned timing sessions.

The :class:`~repro.timing.incremental.IncrementalTimer` repropagates only
the dirty cone of each edit but folds candidates in exactly the order of
the full batched engine, so after any edit sequence its state must match a
from-scratch batch pass to 1e-9 — asserted here on randomized sequences of
retime / remove / add edits over the real ISCAS c17 circuit, a generated
4x4 array multiplier and the c432 surrogate.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.canonical import CanonicalForm
from repro.errors import TimingGraphError
from repro.model.reduction import reduce_graph
from repro.timing.graph import TimingGraph
from repro.timing.incremental import IncrementalTimer
from repro.timing.propagation import (
    compute_slacks_batch,
    propagate_arrival_times_batch,
)
from repro.timing.sta import corner_sta


@pytest.fixture
def edit_graph(parity_module) -> TimingGraph:
    """A fresh mutable copy per test (copy() preserves edge ids)."""
    return parity_module[0].copy()


def _constraint(graph: TimingGraph) -> CanonicalForm:
    return CanonicalForm.constant(5000.0, graph.num_locals)


def _assert_dicts_close(incremental, reference, what, rtol=1e-9, atol=1e-9):
    assert set(incremental) == set(reference), what
    for vertex, form in incremental.items():
        assert form.is_close(reference[vertex], rtol=rtol, atol=atol), (
            what,
            vertex,
        )


def _assert_parity(timer: IncrementalTimer, graph: TimingGraph, what: str):
    _assert_dicts_close(
        timer.arrival_times(),
        propagate_arrival_times_batch(graph).as_dict(),
        ("arrivals", what),
    )
    _assert_dicts_close(
        timer.slacks(),
        compute_slacks_batch(graph, timer.required_time).as_dict(),
        ("slacks", what),
    )


class TestRandomizedEditParity:
    def test_single_edit_kinds(self, edit_graph):
        graph = edit_graph
        timer = IncrementalTimer(graph, required_time=_constraint(graph))
        timer.update()

        edge = graph.edges[len(graph.edges) // 2]
        graph.replace_edge_delay(edge, edge.delay.scale(1.25))
        _assert_parity(timer, graph, "retime")

        graph.remove_edge(graph.edges[len(graph.edges) // 3])
        _assert_parity(timer, graph, "remove")

        order = graph.topological_order()
        graph.add_edge(
            order[1], order[-1], CanonicalForm(12.0, 0.5, None, 0.25)
        )
        _assert_parity(timer, graph, "add")

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_randomized_sequences(self, edit_graph, random_graph_edit, seed):
        graph = edit_graph
        timer = IncrementalTimer(graph, required_time=_constraint(graph))
        timer.update()
        rng = random.Random(seed)
        for step in range(18):
            random_graph_edit(graph, rng)
            if step % 3 == 2:  # also exercises multi-edit coalescing
                _assert_parity(timer, graph, "step %d" % step)
        _assert_parity(timer, graph, "final")

    def test_edit_burst_coalesces_into_one_update(self, edit_graph):
        graph = edit_graph
        timer = IncrementalTimer(graph, required_time=_constraint(graph))
        timer.update()
        rng = random.Random(11)
        for _unused in range(10):
            edge = rng.choice(graph.edges)
            graph.replace_edge_delay(edge, edge.delay.scale(rng.uniform(0.8, 1.2)))
        stats = timer.update()
        assert stats.mode == "incremental"
        assert stats.revision == graph.revision
        _assert_parity(timer, graph, "burst")

    def test_convergence_tolerance_stays_within_budget(self, edit_graph):
        graph = edit_graph
        timer = IncrementalTimer(
            graph,
            required_time=_constraint(graph),
            convergence_tolerance=1e-12,
        )
        timer.update()
        rng = random.Random(5)
        for _unused in range(12):
            edge = rng.choice(graph.edges)
            graph.replace_edge_delay(edge, edge.delay.scale(rng.uniform(0.9, 1.1)))
        _assert_parity(timer, graph, "tolerance")  # still within 1e-9

    def test_input_arrival_offsets(self, edit_graph):
        graph = edit_graph
        offsets = {
            name: CanonicalForm(5.0 + position, 0.4, [0.2], 0.1)
            for position, name in enumerate(graph.inputs)
        }
        timer = IncrementalTimer(
            graph, input_arrivals=offsets, required_time=_constraint(graph)
        )
        timer.update()
        edge = graph.edges[0]
        graph.replace_edge_delay(edge, edge.delay.scale(1.4))
        _assert_dicts_close(
            timer.arrival_times(),
            propagate_arrival_times_batch(graph, offsets).as_dict(),
            "seeded arrivals",
        )


class TestLazyQueries:
    def test_point_queries_match_dictionaries(self, edit_graph):
        graph = edit_graph
        timer = IncrementalTimer(graph, required_time=_constraint(graph))
        graph.replace_edge_delay(graph.edges[2], graph.edges[2].delay.scale(1.1))
        arrivals = timer.arrival_times()
        slacks = timer.slacks()
        for vertex in graph.vertices:
            arrival = timer.arrival_at(vertex)
            if arrival is None:
                assert vertex not in arrivals
            else:
                assert arrival == arrivals[vertex]
            slack = timer.slack_at(vertex)
            if slack is not None:
                assert slack.is_close(slacks[vertex], rtol=1e-12, atol=1e-12)
        assert timer.arrival_at("__ghost__") is None

    def test_circuit_delay_matches_full_reduction(self, edit_graph):
        graph = edit_graph
        timer = IncrementalTimer(graph)
        graph.replace_edge_delay(graph.edges[1], graph.edges[1].delay.scale(1.2))
        times = propagate_arrival_times_batch(graph)
        rows = [
            int(row) for row in times.arrays.output_rows if times.valid[row]
        ]
        expected = times.batch.gather(rows).max_over()
        assert timer.circuit_delay().is_close(expected, rtol=1e-9, atol=1e-9)

    def test_criticalities_are_probabilities(self, edit_graph):
        graph = edit_graph
        timer = IncrementalTimer(graph)
        delay_mean = timer.circuit_delay().mean
        timer.set_required_time(timer.circuit_delay())
        criticalities = timer.criticalities()
        assert set(criticalities) == {edge.edge_id for edge in graph.edges}
        values = np.asarray(list(criticalities.values()))
        assert np.all(values >= 0.0) and np.all(values <= 1.0)
        # The constraint sits at the (soft-max) circuit delay, so the most
        # critical edges hover just below the 50/50 tightness point.
        assert values.max() > 0.3
        # A constraint far below the circuit delay makes the critical path
        # violate almost surely; far above, every edge is safely uncritical.
        timer.set_required_time(
            CanonicalForm.constant(0.25 * delay_mean, graph.num_locals)
        )
        assert max(timer.criticalities().values()) > 0.95
        timer.set_required_time(
            CanonicalForm.constant(4.0 * delay_mean, graph.num_locals)
        )
        assert max(timer.criticalities().values()) < 0.05

    def test_set_required_time_updates_slacks(self, edit_graph):
        graph = edit_graph
        timer = IncrementalTimer(graph, required_time=_constraint(graph))
        timer.slacks()
        tighter = CanonicalForm.constant(100.0, graph.num_locals)
        timer.set_required_time(tighter)
        _assert_dicts_close(
            timer.slacks(),
            compute_slacks_batch(graph, tighter).as_dict(),
            "retimed constraint",
        )


class TestNoOpProperty:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        num_edits=st.integers(min_value=0, max_value=6),
    )
    def test_update_after_empty_journal_is_noop(
        self, random_graph_edit, seed, num_edits
    ):
        graph = _small_diamond()
        timer = IncrementalTimer(graph, required_time=_constraint(graph))
        rng = random.Random(seed)
        for _unused in range(num_edits):
            if graph.num_edges == 0:
                break
            random_graph_edit(graph, rng)
        timer.update()  # drains everything the edits produced
        snapshot = (
            timer._fwd.mean.copy(),
            timer._fwd.valid.copy(),
            timer._bwd.mean.copy(),
            timer._bwd.valid.copy(),
        )
        stats = timer.update()  # journal is now empty
        assert stats.mode == "noop"
        assert stats.forward_recomputed == 0
        assert stats.backward_recomputed == 0
        np.testing.assert_array_equal(timer._fwd.mean, snapshot[0])
        np.testing.assert_array_equal(timer._fwd.valid, snapshot[1])
        np.testing.assert_array_equal(timer._bwd.mean, snapshot[2])
        np.testing.assert_array_equal(timer._bwd.valid, snapshot[3])


def _small_diamond() -> TimingGraph:
    graph = TimingGraph("diamond", 0)
    graph.mark_input("a")
    graph.mark_output("z")
    graph.add_edge("a", "u", CanonicalForm(10.0, 1.0, None, 0.5))
    graph.add_edge("a", "v", CanonicalForm(20.0, 0.5, None, 0.25))
    graph.add_edge("u", "z", CanonicalForm(5.0, 0.2, None, 0.1))
    graph.add_edge("v", "z", CanonicalForm(1.0, 0.1, None, 0.05))
    return graph


class TestStaleSessionsAndJournal:
    def test_stale_session_raises(self):
        graph = _small_diamond()
        stale_copy = graph.copy()
        edge = graph.edges[0]
        graph.replace_edge_delay(edge, edge.delay.scale(1.1))
        timer = IncrementalTimer(graph)
        timer.update()
        # A session synced against the evolved graph is stale for the
        # earlier copy: the revision it remembers lies in the copy's future.
        with pytest.raises(TimingGraphError, match="stale session"):
            stale_copy.changes_since(timer.revision)

    def test_journal_overflow_falls_back_to_full(self, c17_graph):
        graph = c17_graph
        small = TimingGraph(graph.name, graph.num_locals, journal_limit=8)
        for vertex in graph.inputs:
            small.mark_input(vertex)
        for vertex in graph.outputs:
            small.mark_output(vertex)
        for edge in graph.edges:
            small.add_edge(edge.source, edge.sink, edge.delay)
        timer = IncrementalTimer(small, required_time=_constraint(small))
        timer.update()
        rng = random.Random(3)
        for _unused in range(30):  # far beyond the retained window
            edge = rng.choice(small.edges)
            small.replace_edge_delay(edge, edge.delay.scale(rng.uniform(0.9, 1.1)))
        stats = timer.update()
        assert stats.mode == "full"
        _assert_parity(timer, small, "overflow")

    def test_reduction_coalesces_through_session(self, c17_graph):
        graph = c17_graph.copy()
        timer = IncrementalTimer(graph, required_time=_constraint(graph))
        timer.update()
        reduce_graph(graph, timer=timer)
        assert timer.revision == graph.revision
        _assert_parity(timer, graph, "reduction")

    def test_one_shot_array_views_do_not_enable_journaling(self):
        from repro.timing.arrays import GraphArrays

        graph = _small_diamond()
        GraphArrays.from_graph(graph)  # e.g. corner STA / Monte Carlo view
        base = graph.revision
        edge = graph.edges[0]
        graph.replace_edge_delay(edge, edge.delay.scale(1.1))
        # No incremental consumer attached: history is not retained.
        assert graph.changes_since(base) is None
        # A session attach turns journaling on from that point.
        timer = IncrementalTimer(graph)
        base = graph.revision
        graph.replace_edge_delay(edge, edge.delay.scale(1.1))
        assert graph.changes_since(base).retimed_edges == (edge.edge_id,)
        timer.update()

    def test_reduction_rejects_foreign_timer(self):
        graph = _small_diamond()
        other = _small_diamond()
        timer = IncrementalTimer(other)
        with pytest.raises(TimingGraphError):
            reduce_graph(graph, timer=timer)


class TestCornerStaSessionReuse:
    def test_corner_sta_accepts_session(self, edit_graph):
        graph = edit_graph
        timer = IncrementalTimer(graph)
        timer.update()
        edge = graph.edges[0]
        graph.replace_edge_delay(edge, edge.delay.scale(1.3))
        from_session = corner_sta(timer=timer, sigma_corner=3.0)
        from_scratch = corner_sta(graph, sigma_corner=3.0)
        assert from_session.nominal == pytest.approx(from_scratch.nominal, rel=1e-12)
        assert from_session.worst == pytest.approx(from_scratch.worst, rel=1e-12)
        assert from_session.best == pytest.approx(from_scratch.best, rel=1e-12)

    def test_corner_sta_sync_defers_statistical_work(self):
        # A structure-only sync must not run the statistical passes even
        # when the window forces a rebuild (journal overflow): the cached
        # state is dropped and the next timing query repropagates.
        graph = _small_diamond()
        small = TimingGraph(graph.name, 0, journal_limit=4)
        small.mark_input("a")
        small.mark_output("z")
        for edge in graph.edges:
            small.add_edge(edge.source, edge.sink, edge.delay)
        timer = IncrementalTimer(small)
        timer.update()
        rng = random.Random(1)
        for _unused in range(12):  # overflow the tiny journal
            edge = rng.choice(small.edges)
            small.replace_edge_delay(edge, edge.delay.scale(rng.uniform(0.9, 1.1)))
        report = corner_sta(timer=timer)
        assert timer._fwd is None  # state dropped, not repropagated
        assert report.worst == pytest.approx(corner_sta(small).worst, rel=1e-12)
        stats = timer.update()  # next timing sync rebuilds the state
        assert stats.mode == "full"
        _assert_parity(timer, small, "post-sync rebuild")

    def test_corner_sta_rejects_mismatched_graph(self, edit_graph):
        timer = IncrementalTimer(edit_graph)
        with pytest.raises(TimingGraphError):
            corner_sta(_small_diamond(), timer=timer)

    def test_corner_sta_requires_some_input(self):
        with pytest.raises(TimingGraphError):
            corner_sta()


class TestObjectEngineDirtySweep:
    """The scalar reference fold takes over on narrow dirty levels."""

    @staticmethod
    def _deep_chain(stages: int = 60, width: int = 2) -> TimingGraph:
        graph = TimingGraph("chain", 1)
        graph.mark_input("v0_0")
        previous = ["v0_0"]
        rng = random.Random(9)
        for stage in range(1, stages):
            current = ["v%d_%d" % (stage, lane) for lane in range(width)]
            for sink in current:
                for source in previous:
                    graph.add_edge(
                        source, sink,
                        CanonicalForm(rng.uniform(5.0, 15.0), 0.3, [0.1], 0.2),
                    )
            previous = current
        for sink in previous:
            graph.mark_output(sink)
        return graph

    def test_scalar_engine_selected_on_deep_narrow_cones(self):
        from repro.timing.incremental import SCALAR_SWEEP_MAX_LEVEL_EDGES

        graph = self._deep_chain()
        timer = IncrementalTimer(graph, required_time=_constraint(graph))
        timer.update()
        assert timer.scalar_level_folds == 0  # the first pass is batched
        edge = graph.edges[0]  # near-input edge: the cone spans every level
        graph.replace_edge_delay(edge, edge.delay.scale(1.2))
        timer.update()
        # Every dirty level of the chain folds 2 vertices x 2 edges, well
        # under the crossover, so the sweep ran on the scalar engine.
        assert SCALAR_SWEEP_MAX_LEVEL_EDGES >= 4
        assert timer.scalar_level_folds > 0
        assert timer.batched_level_folds == 0
        _assert_parity(timer, graph, "scalar sweep")

    def test_scalar_and_batched_engines_agree(self):
        graph = self._deep_chain()
        timer = IncrementalTimer(graph, required_time=_constraint(graph))
        timer.update()
        rng = random.Random(13)
        for _unused in range(8):
            edge = rng.choice(graph.edges)
            graph.replace_edge_delay(edge, edge.delay.scale(rng.uniform(0.8, 1.2)))
            _assert_parity(timer, graph, "scalar parity")

    def test_wide_dirty_levels_stay_batched(self, edit_graph):
        from repro.timing.incremental import SCALAR_SWEEP_MAX_LEVEL_EDGES

        graph = edit_graph
        timer = IncrementalTimer(graph, required_time=_constraint(graph))
        timer.update()
        # Retime every edge: whole-graph dirty cones on the wider ISCAS
        # fixtures exceed the per-level crossover somewhere.
        for edge in graph.edges:
            graph.replace_edge_delay(edge, edge.delay.scale(1.01))
        timer.update()
        levels = timer.arrays.forward_levels()
        widest = max(
            int((level.edge_matrix >= 0).sum()) for level in levels
        )
        if widest > SCALAR_SWEEP_MAX_LEVEL_EDGES:
            assert timer.batched_level_folds > 0
        _assert_parity(timer, graph, "wide levels")


class TestNonFiniteSeedsRejected:
    def test_minus_infinity_input_rejected(self):
        graph = _small_diamond()
        masks = {"a": CanonicalForm.minus_infinity(0)}
        with pytest.raises(ValueError):
            IncrementalTimer(graph, input_arrivals=masks)
