"""Incremental-vs-full parity tests of the all-pairs extraction sessions.

An :class:`~repro.timing.allpairs.AllPairsSession` repropagates only the
dirty cone of each edit burst but folds candidates in exactly the order of
the from-scratch engine, so after any edit sequence its per-input arrival
tensors, per-output delay tensors and input/output delay matrix must match
a fresh :meth:`AllPairsTiming.analyze` to 1e-9 — asserted here on
randomized sequences of retime / remove / add edits over the real ISCAS c17
circuit, a generated 4x4 array multiplier and the c432 surrogate (the
acceptance circuits of the incremental-extraction refactor).
"""

import random

import numpy as np
import pytest

from repro.core.canonical import CanonicalForm
from repro.errors import TimingGraphError
from repro.model.reduction import reduce_graph
from repro.timing.allpairs import AllPairsSession, AllPairsTiming
from repro.timing.graph import TimingGraph


@pytest.fixture
def edit_graph(parity_module) -> TimingGraph:
    """A fresh mutable copy per test (copy() preserves edge ids)."""
    return parity_module[0].copy()


def _assert_tensor_parity(session: AllPairsSession, graph: TimingGraph, what: str):
    fresh = AllPairsTiming.analyze(graph)
    analysis = session.analysis
    for prefix in ("arrival", "to_output", "matrix"):
        valid = getattr(analysis, prefix + "_valid")
        reference_valid = getattr(fresh, prefix + "_valid")
        np.testing.assert_array_equal(
            valid, reference_valid, err_msg="%s %s validity" % (what, prefix)
        )
        for component in ("mean", "corr", "randvar"):
            value = getattr(analysis, "%s_%s" % (prefix, component))
            reference = getattr(fresh, "%s_%s" % (prefix, component))
            mask = reference_valid if component != "corr" else reference_valid[..., None]
            np.testing.assert_allclose(
                np.where(mask, value, 0.0),
                np.where(mask, reference, 0.0),
                rtol=1e-9,
                atol=1e-9,
                err_msg="%s %s %s" % (what, prefix, component),
            )


class TestRandomizedEditParity:
    def test_single_edit_kinds(self, edit_graph):
        graph = edit_graph
        session = AllPairsSession(graph)

        edge = graph.edges[len(graph.edges) // 2]
        graph.replace_edge_delay(edge, edge.delay.scale(1.25))
        _assert_tensor_parity(session, graph, "retime")
        assert session.last_update.mode == "incremental"

        graph.remove_edge(graph.edges[len(graph.edges) // 3])
        _assert_tensor_parity(session, graph, "remove")

        order = graph.topological_order()
        graph.add_edge(order[1], order[-1], CanonicalForm(12.0, 0.5, None, 0.25))
        _assert_tensor_parity(session, graph, "add")

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_randomized_sequences(self, edit_graph, random_graph_edit, seed):
        graph = edit_graph
        session = AllPairsSession(graph)
        rng = random.Random(seed)
        for step in range(18):
            random_graph_edit(graph, rng)
            if step % 3 == 2:  # also exercises multi-edit coalescing
                _assert_tensor_parity(session, graph, "step %d" % step)
        _assert_tensor_parity(session, graph, "final")

    def test_edit_burst_coalesces_into_one_update(self, edit_graph):
        graph = edit_graph
        session = AllPairsSession(graph)
        rng = random.Random(11)
        for _unused in range(10):
            edge = rng.choice(graph.edges)
            graph.replace_edge_delay(edge, edge.delay.scale(rng.uniform(0.8, 1.2)))
        update = session.refresh()
        assert update.mode == "incremental"
        assert update.revision == graph.revision
        assert 0 < update.forward_recomputed
        _assert_tensor_parity(session, graph, "burst")

    def test_noop_refresh(self, edit_graph):
        graph = edit_graph
        session = AllPairsSession(graph)
        serial = session.serial
        update = session.refresh()
        assert update.mode == "noop"
        assert update.forward_recomputed == 0
        assert session.serial == serial  # noops do not consume a serial

    def test_dirty_cone_is_smaller_than_the_graph(self, edit_graph):
        graph = edit_graph
        session = AllPairsSession(graph)
        # Retiming an edge near the outputs leaves most of the forward
        # tensor untouched.
        order = graph.topological_order()
        for vertex in reversed(order):
            fanin = graph.fanin_edges(vertex)
            if fanin:
                edge = fanin[0]
                break
        graph.replace_edge_delay(edge, edge.delay.scale(1.1))
        update = session.refresh()
        assert update.mode == "incremental"
        assert update.forward_recomputed < graph.num_vertices / 2


class TestChangeMasks:
    def test_retime_reports_changed_entries(self, edit_graph):
        graph = edit_graph
        session = AllPairsSession(graph)
        edge = graph.edges[0]
        graph.replace_edge_delay(edge, edge.delay.scale(1.5))
        update = session.refresh()
        assert update.touched_edges == (edge.edge_id,)
        assert update.arrival_changed is not None
        assert update.arrival_changed.shape == (
            graph.num_vertices,
            len(graph.inputs),
        )
        assert update.arrival_changed.any()

    def test_transient_add_remove_cancels(self, edit_graph):
        graph = edit_graph
        session = AllPairsSession(graph)
        order = graph.topological_order()
        edge = graph.add_edge(order[0], order[-1], CanonicalForm(1.0, 0.0, None, 0.0))
        graph.remove_edge(edge)
        update = session.refresh()
        assert edge.edge_id not in update.touched_edges
        assert edge.edge_id not in update.removed_edges
        _assert_tensor_parity(session, graph, "transient")


class TestFullFallbacks:
    def test_io_change_forces_full(self, edit_graph):
        graph = edit_graph
        session = AllPairsSession(graph)
        internal = next(iter(graph.internal_vertices()))
        graph.mark_output(internal)
        update = session.refresh()
        assert update.mode == "full"
        assert update.arrival_changed is None
        _assert_tensor_parity(session, graph, "io change")

    def test_journal_overflow_forces_full(self, c17_graph):
        graph = c17_graph
        small = TimingGraph(graph.name, graph.num_locals, journal_limit=8)
        for vertex in graph.inputs:
            small.mark_input(vertex)
        for vertex in graph.outputs:
            small.mark_output(vertex)
        for edge in graph.edges:
            small.add_edge(edge.source, edge.sink, edge.delay)
        session = AllPairsSession(small)
        rng = random.Random(3)
        for _unused in range(30):  # far beyond the retained window
            edge = rng.choice(small.edges)
            small.replace_edge_delay(edge, edge.delay.scale(rng.uniform(0.9, 1.1)))
        update = session.refresh()
        assert update.mode == "full"
        _assert_tensor_parity(session, small, "overflow")

    def test_requires_inputs_and_outputs(self):
        graph = TimingGraph("empty")
        graph.add_edge("a", "b", CanonicalForm(1.0, 0.0, None, 0.0))
        with pytest.raises(TimingGraphError):
            AllPairsSession(graph)

    def test_stale_session_raises(self, edit_graph):
        graph = edit_graph
        stale_copy = graph.copy()
        session = AllPairsSession(graph)
        edge = graph.edges[0]
        graph.replace_edge_delay(edge, edge.delay.scale(1.1))
        session.refresh()
        with pytest.raises(TimingGraphError, match="stale session"):
            stale_copy.changes_since(session.revision)


class TestReductionThroughSession:
    def test_reduction_keeps_the_matrix_live(self, edit_graph):
        graph = edit_graph
        session = AllPairsSession(graph)
        reference = session.analysis.matrix_means().copy()
        reduce_graph(graph, session=session)
        assert session.revision == graph.revision
        _assert_tensor_parity(session, graph, "reduction fixpoint")
        # The merges preserve the input/output delay matrix up to the
        # re-stacked Clark approximations of the merged forms.
        np.testing.assert_allclose(
            session.analysis.matrix_means(), reference, rtol=0.03, equal_nan=True
        )

    def test_reduction_rejects_foreign_session(self, edit_graph):
        graph = edit_graph
        other = graph.copy()
        session = AllPairsSession(other)
        with pytest.raises(TimingGraphError):
            reduce_graph(graph, session=session)
