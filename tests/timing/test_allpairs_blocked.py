"""Parity and memory accounting of the blocked all-pairs engine.

The blocked engine streams input/output columns in budget-sized blocks
instead of materializing the full ``(V, I)`` / ``(V, O)`` state tensors.
Both engines execute the identical fold kernels in the identical order, so
parity with the dense reference is asserted at 1e-9 (it is in fact
bitwise on every graph below).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.netlist.generators import (
    design_for_edge_count,
    layered_random_circuit,
)
from repro.timing.allpairs import (
    ALLPAIRS_BUDGET_FLOATS,
    AllPairsSession,
    AllPairsTiming,
    allpairs_budget_floats,
    dense_tensor_floats,
)
from repro.timing.arrays import GraphArrays
from repro.timing.builder import synthetic_timing_graph

PARITY_TOLERANCE = 1e-9


@pytest.fixture(scope="module")
def random_graph():
    netlist = layered_random_circuit("blk", 9, 7, 160, 420, seed=21)
    return synthetic_timing_graph(netlist, num_locals=5, seed=3)


def _assert_matrix_parity(dense, blocked, tolerance=PARITY_TOLERANCE):
    assert np.array_equal(dense.matrix_valid, blocked.matrix_valid)
    for field in ("matrix_mean", "matrix_corr", "matrix_randvar"):
        a = getattr(dense, field)
        b = getattr(blocked, field)
        assert np.max(np.abs(a - b), initial=0.0) <= tolerance


class TestEngineParity:
    def test_blocked_matches_dense_on_adder(self, adder_graph):
        dense = AllPairsTiming.analyze(adder_graph, engine="dense")
        blocked = AllPairsTiming.analyze(adder_graph, engine="blocked")
        _assert_matrix_parity(dense, blocked)

    def test_blocked_matches_dense_on_random_graph(self, random_graph):
        dense = AllPairsTiming.analyze(random_graph, engine="dense")
        blocked = AllPairsTiming.analyze(random_graph, engine="blocked")
        _assert_matrix_parity(dense, blocked)

    @pytest.mark.parametrize("block_columns", [1, 3, 1000])
    def test_parity_for_every_block_width(self, random_graph, block_columns):
        dense = AllPairsTiming.analyze(random_graph, engine="dense")
        blocked = AllPairsTiming.analyze(
            random_graph, engine="blocked", block_columns=block_columns
        )
        _assert_matrix_parity(dense, blocked)

    def test_blocked_matches_dense_on_generated_large_design(self):
        # The acceptance-scale design: ~1e5 edges through the synthetic
        # variation stamper (dense stays tractable at 12x12 pairs).
        netlist = layered_random_circuit("large", 12, 12, 50_000, 100_000, seed=7)
        graph = synthetic_timing_graph(netlist, seed=1)
        dense = AllPairsTiming.analyze(graph, engine="dense")
        blocked = AllPairsTiming.analyze(graph, engine="blocked")
        _assert_matrix_parity(dense, blocked)


class TestEngineSelection:
    def test_auto_picks_dense_under_budget(self, random_graph):
        analysis = AllPairsTiming.analyze(random_graph, engine="auto")
        assert analysis.engine == "dense"
        assert analysis.arrival_mean is not None

    def test_auto_picks_blocked_over_budget(self, random_graph, monkeypatch):
        monkeypatch.setenv("REPRO_ALLPAIRS_BUDGET_FLOATS", "64")
        analysis = AllPairsTiming.analyze(random_graph, engine="auto")
        assert analysis.engine == "blocked"
        assert analysis.arrival_mean is None
        # The streamed result is still the full matrix.
        assert analysis.matrix_mean.shape == (
            len(analysis.inputs),
            len(analysis.outputs),
        )

    def test_budget_env_validation(self, monkeypatch):
        assert allpairs_budget_floats() == ALLPAIRS_BUDGET_FLOATS
        monkeypatch.setenv("REPRO_ALLPAIRS_BUDGET_FLOATS", "12345")
        assert allpairs_budget_floats() == 12345
        monkeypatch.setenv("REPRO_ALLPAIRS_BUDGET_FLOATS", "zero")
        with pytest.raises(ValueError):
            allpairs_budget_floats()
        monkeypatch.setenv("REPRO_ALLPAIRS_BUDGET_FLOATS", "-3")
        with pytest.raises(ValueError):
            allpairs_budget_floats()

    def test_dense_tensor_floats_formula(self):
        assert dense_tensor_floats(100, 8, 4, 5) == 100 * 12 * 7

    def test_invalid_engine_and_block_columns(self, random_graph):
        with pytest.raises(ValueError):
            AllPairsTiming.analyze(random_graph, engine="turbo")
        with pytest.raises(ValueError):
            AllPairsTiming.analyze(random_graph, engine="blocked", block_columns=0)


class TestBlockIterators:
    def test_arrival_blocks_cover_dense_columns(self, random_graph):
        dense = AllPairsTiming.analyze(random_graph, engine="dense")
        blocked = AllPairsTiming.analyze(random_graph, engine="blocked")
        seen = np.zeros(len(dense.inputs), dtype=bool)
        for positions, mean, corr, randvar, valid in blocked.iter_arrival_blocks(
            block_columns=2
        ):
            columns = list(positions)
            assert not seen[columns].any()
            seen[columns] = True
            assert np.max(
                np.abs(dense.arrival_mean[:, columns] - mean), initial=0.0
            ) <= PARITY_TOLERANCE
            assert np.array_equal(dense.arrival_valid[:, columns], valid)
        assert seen.all()

    def test_to_output_blocks_cover_dense_columns(self, random_graph):
        dense = AllPairsTiming.analyze(random_graph, engine="dense")
        blocked = AllPairsTiming.analyze(random_graph, engine="blocked")
        seen = np.zeros(len(dense.outputs), dtype=bool)
        for positions, mean, corr, randvar, valid in blocked.iter_to_output_blocks(
            block_columns=3
        ):
            columns = list(positions)
            seen[columns] = True
            assert np.max(
                np.abs(dense.to_output_mean[:, columns] - mean), initial=0.0
            ) <= PARITY_TOLERANCE
        assert seen.all()


class TestMemoryAccounting:
    def test_graph_arrays_report(self, random_graph):
        arrays = GraphArrays.from_graph(random_graph)
        report = arrays.nbytes_report()
        fields = [
            "edge_ids",
            "edge_source",
            "edge_sink",
            "edge_mean",
            "edge_corr",
            "edge_randvar",
        ]
        for field in fields:
            assert report[field] == getattr(arrays, field).nbytes
        # Levels and adjacency are built lazily and start unaccounted.
        assert report["forward_levels"] == 0
        arrays.forward_levels()
        rebuilt = arrays.nbytes_report()
        assert rebuilt["forward_levels"] > 0
        assert rebuilt["total"] == sum(
            value for key, value in rebuilt.items() if key != "total"
        )

    def test_dense_and_blocked_reports_differ(self, random_graph):
        dense = AllPairsTiming.analyze(random_graph, engine="dense")
        blocked = AllPairsTiming.analyze(random_graph, engine="blocked")
        dense_report = dense.nbytes_report()
        blocked_report = blocked.nbytes_report()
        assert dense_report["arrival"] > 0
        assert dense_report["to_output"] > 0
        assert blocked_report["arrival"] == 0
        assert blocked_report["to_output"] == 0
        assert blocked_report["matrix"] == dense_report["matrix"]
        assert blocked_report["total"] < dense_report["total"]

    def test_session_report_tracks_analysis(self, random_graph):
        session = AllPairsSession(random_graph)
        before = session.nbytes_report()
        session.analysis
        after = session.nbytes_report()
        assert after["analysis"] >= before["analysis"]
        assert after["total"] == after["analysis"] + after["dirty_state"]
