"""Tests of the vectorized all-pairs input/output analysis."""

import numpy as np
import pytest

from repro.core.canonical import CanonicalForm
from repro.core.ops import statistical_max, statistical_sum
from repro.errors import TimingGraphError
from repro.montecarlo.flat import simulate_io_delays
from repro.timing.allpairs import AllPairsTiming, GraphArrays, clark_max_arrays
from repro.timing.graph import TimingGraph
from repro.timing.propagation import propagate_arrival_times


def _delay(value: float, sigma_scale: float = 0.05) -> CanonicalForm:
    return CanonicalForm(value, sigma_scale * value, [0.3 * sigma_scale * value],
                         0.5 * sigma_scale * value)


@pytest.fixture
def two_by_two() -> TimingGraph:
    """Two inputs, two outputs, with one unreachable pair."""
    graph = TimingGraph("g", 1)
    for name in ("a", "b"):
        graph.mark_input(name)
    for name in ("y", "z"):
        graph.mark_output(name)
    graph.add_edge("a", "m", _delay(10.0))
    graph.add_edge("b", "m", _delay(12.0))
    graph.add_edge("m", "y", _delay(5.0))
    graph.add_edge("m", "z", _delay(7.0))
    graph.add_edge("a", "y", _delay(30.0))  # direct slow path, only from a
    return graph


class TestGraphArrays:
    def test_arrays_shapes(self, two_by_two):
        arrays = GraphArrays.from_graph(two_by_two)
        assert arrays.edge_mean.shape == (5,)
        assert arrays.edge_corr.shape == (5, 2)
        assert arrays.num_corr == 2
        assert len(arrays.topo_order) == two_by_two.num_vertices

    def test_edge_rows_cover_all_edges(self, two_by_two):
        arrays = GraphArrays.from_graph(two_by_two)
        assert set(arrays.edge_rows) == {edge.edge_id for edge in two_by_two.edges}


class TestClarkMaxArrays:
    def test_matches_scalar_operator(self):
        rng = np.random.default_rng(4)
        for _unused in range(20):
            a = CanonicalForm(rng.uniform(0, 20), rng.uniform(0, 2),
                              rng.uniform(-1, 1, 2), rng.uniform(0, 2))
            b = CanonicalForm(rng.uniform(0, 20), rng.uniform(0, 2),
                              rng.uniform(-1, 1, 2), rng.uniform(0, 2))
            expected = statistical_max(a, b)
            corr_a = np.concatenate(([a.global_coeff], a.local_coeffs))
            corr_b = np.concatenate(([b.global_coeff], b.local_coeffs))
            mean, corr, randvar = clark_max_arrays(
                np.array([a.nominal]), corr_a[np.newaxis, :], np.array([a.random_coeff ** 2]),
                np.array([b.nominal]), corr_b[np.newaxis, :], np.array([b.random_coeff ** 2]),
            )
            assert mean[0] == pytest.approx(expected.nominal, rel=1e-9)
            total_var = float(np.dot(corr[0], corr[0]) + randvar[0])
            assert total_var == pytest.approx(expected.variance, rel=1e-9)


class TestAllPairs:
    def test_requires_inputs_and_outputs(self):
        graph = TimingGraph("empty")
        graph.add_edge("a", "b", _delay(1.0))
        with pytest.raises(TimingGraphError):
            AllPairsTiming.analyze(graph)

    def test_matrix_validity_mask(self, two_by_two):
        analysis = AllPairsTiming.analyze(two_by_two)
        assert analysis.matrix_valid.all()
        assert analysis.delay_form("a", "y") is not None

    def test_unreachable_pair_is_invalid(self):
        graph = TimingGraph("partial", 1)
        graph.mark_input("a")
        graph.mark_input("b")
        graph.mark_output("y")
        graph.mark_output("z")
        graph.add_edge("a", "y", _delay(3.0))
        graph.add_edge("b", "z", _delay(4.0))
        analysis = AllPairsTiming.analyze(graph)
        assert analysis.matrix_valid[0, 0]
        assert not analysis.matrix_valid[0, 1]
        assert analysis.delay_form("a", "z") is None
        assert np.isnan(analysis.matrix_means()[0, 1])

    def test_deterministic_delays(self, two_by_two):
        analysis = AllPairsTiming.analyze(two_by_two)
        means = analysis.matrix_means()
        i_a = analysis.inputs.index("a")
        i_b = analysis.inputs.index("b")
        j_y = analysis.outputs.index("y")
        j_z = analysis.outputs.index("z")
        # a->y: max(10+5, 30) = 30-ish (statistical max can only exceed it).
        assert means[i_a, j_y] >= 30.0 - 1e-6
        assert means[i_b, j_y] == pytest.approx(17.0, rel=0.01)
        assert means[i_a, j_z] == pytest.approx(17.0, rel=0.01)
        assert means[i_b, j_z] == pytest.approx(19.0, rel=0.01)

    def test_single_input_column_matches_object_propagation(self, two_by_two):
        analysis = AllPairsTiming.analyze(two_by_two)
        # Propagate from input "b" alone with the object-level engine.
        graph = two_by_two
        arrivals = propagate_arrival_times(
            graph,
            {
                "a": CanonicalForm.minus_infinity(1),
                "b": CanonicalForm.constant(0.0, 1),
            },
        )
        i_b = analysis.inputs.index("b")
        j_z = analysis.outputs.index("z")
        assert analysis.matrix_mean[i_b, j_z] == pytest.approx(arrivals["z"].nominal, rel=1e-9)

    def test_matrix_against_monte_carlo(self, adder_graph):
        analysis = AllPairsTiming.analyze(adder_graph)
        reference = simulate_io_delays(adder_graph, num_samples=3000, seed=5)
        means = analysis.matrix_means()
        stds = analysis.matrix_std()
        mask = analysis.matrix_valid
        assert np.allclose(means[mask], reference.means[mask], rtol=0.05)
        assert np.allclose(stds[mask], reference.stds[mask], rtol=0.25, atol=2.0)

    def test_arrival_validity_only_for_reachable(self, two_by_two):
        analysis = AllPairsTiming.analyze(two_by_two)
        arrays = analysis.arrays
        m_row = arrays.vertex_index["m"]
        assert analysis.arrival_valid[m_row].all()
        y_row = arrays.vertex_index["y"]
        assert analysis.to_output_valid[y_row].tolist() == [True, False]
