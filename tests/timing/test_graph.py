"""Tests of the timing-graph data structure."""

import pytest

from repro.core.canonical import CanonicalForm
from repro.errors import TimingGraphError
from repro.timing.graph import TimingGraph


def _delay(value: float) -> CanonicalForm:
    return CanonicalForm(value, 0.1 * value, None, 0.05 * value)


@pytest.fixture
def diamond() -> TimingGraph:
    graph = TimingGraph("diamond", 0)
    graph.mark_input("a")
    graph.mark_output("z")
    graph.add_edge("a", "u", _delay(10.0))
    graph.add_edge("a", "v", _delay(20.0))
    graph.add_edge("u", "z", _delay(5.0))
    graph.add_edge("v", "z", _delay(1.0))
    return graph


class TestConstruction:
    def test_counts(self, diamond):
        assert diamond.num_vertices == 4
        assert diamond.num_edges == 4
        assert diamond.inputs == ("a",)
        assert diamond.outputs == ("z",)

    def test_parallel_edges_allowed(self, diamond):
        diamond.add_edge("u", "z", _delay(7.0))
        assert diamond.num_edges == 5
        assert len(diamond.fanin_edges("z")) == 3

    def test_self_loop_rejected(self, diamond):
        with pytest.raises(TimingGraphError):
            diamond.add_edge("u", "u", _delay(1.0))

    def test_add_vertex_idempotent(self, diamond):
        diamond.add_vertex("u")
        assert diamond.num_vertices == 4

    def test_mark_input_twice(self, diamond):
        diamond.mark_input("a")
        assert diamond.inputs == ("a",)


class TestQueries:
    def test_fanin_fanout(self, diamond):
        assert diamond.fanin_count("z") == 2
        assert diamond.fanout_count("a") == 2
        assert {edge.sink for edge in diamond.fanout_edges("a")} == {"u", "v"}
        assert diamond.predecessors("z") == ("u", "v")
        assert diamond.successors("a") == ("u", "v")

    def test_unknown_vertex_raises(self, diamond):
        with pytest.raises(TimingGraphError):
            diamond.fanin_edges("ghost")

    def test_edge_lookup(self, diamond):
        edge = diamond.edges[0]
        assert diamond.edge(edge.edge_id) is edge
        assert diamond.has_edge(edge.edge_id)
        with pytest.raises(TimingGraphError):
            diamond.edge(999)

    def test_internal_vertices(self, diamond):
        assert set(diamond.internal_vertices()) == {"u", "v"}

    def test_is_input_output(self, diamond):
        assert diamond.is_input("a")
        assert diamond.is_output("z")
        assert not diamond.is_input("u")


class TestMutation:
    def test_remove_edge(self, diamond):
        edge = diamond.fanin_edges("z")[0]
        diamond.remove_edge(edge)
        assert diamond.num_edges == 3
        with pytest.raises(TimingGraphError):
            diamond.remove_edge(edge)

    def test_remove_vertex_requires_no_edges(self, diamond):
        with pytest.raises(TimingGraphError):
            diamond.remove_vertex("u")
        for edge in list(diamond.fanin_edges("u")) + list(diamond.fanout_edges("u")):
            diamond.remove_edge(edge)
        diamond.remove_vertex("u")
        assert not diamond.has_vertex("u")

    def test_cannot_remove_io_vertex(self, diamond):
        for edge in list(diamond.fanout_edges("a")):
            diamond.remove_edge(edge)
        with pytest.raises(TimingGraphError):
            diamond.remove_vertex("a")

    def test_replace_edge_delay(self, diamond):
        edge = diamond.edges[0]
        diamond.replace_edge_delay(edge, _delay(99.0))
        assert diamond.edge(edge.edge_id).delay.nominal == 99.0


class TestAnalysis:
    def test_topological_order(self, diamond):
        order = diamond.topological_order()
        assert order.index("a") < order.index("u") < order.index("z")

    def test_cycle_detection(self):
        graph = TimingGraph("cyclic")
        graph.add_edge("a", "b", _delay(1.0))
        graph.add_edge("b", "c", _delay(1.0))
        graph.add_edge("c", "a", _delay(1.0))
        with pytest.raises(TimingGraphError):
            graph.topological_order()

    def test_validate_rejects_input_with_fanin(self):
        graph = TimingGraph("bad")
        graph.mark_input("a")
        graph.mark_input("b")
        graph.add_edge("a", "b", _delay(1.0))
        with pytest.raises(TimingGraphError):
            graph.validate()

    def test_copy_is_independent(self, diamond):
        clone = diamond.copy("clone")
        clone.remove_edge(clone.edges[0])
        assert diamond.num_edges == 4
        assert clone.num_edges == 3
        assert clone.name == "clone"
        assert clone.inputs == diamond.inputs

    def test_repr(self, diamond):
        assert "diamond" in repr(diamond)


class TestRevisionJournal:
    def test_every_mutation_bumps_revision(self, diamond):
        revision = diamond.revision
        edge = diamond.add_edge("u", "w", _delay(2.0))
        assert diamond.revision > revision
        revision = diamond.revision
        diamond.replace_edge_delay(edge, _delay(3.0))
        assert diamond.revision == revision + 1
        diamond.remove_edge(edge)
        diamond.remove_vertex("w")
        assert diamond.revision == revision + 3

    def test_retime_is_not_structural(self, diamond):
        structural = diamond.structural_revision
        edge = diamond.edges[0]
        diamond.replace_edge_delay(edge, _delay(42.0))
        assert diamond.structural_revision == structural
        diamond.remove_edge(edge)
        assert diamond.structural_revision == diamond.revision

    def test_topological_order_is_cached_across_retimes(self, diamond):
        first = diamond.topological_order()
        edge = diamond.edges[0]
        diamond.replace_edge_delay(edge, _delay(42.0))
        second = diamond.topological_order()
        assert first == second
        second.append("mutated")  # callers get a private copy
        assert diamond.topological_order() == first
        diamond.add_edge("u", "v", _delay(1.0))
        assert diamond.topological_order().index("u") < diamond.topological_order().index("v")

    def test_journal_is_lazy_by_default(self, diamond):
        # Without a consumer, mutations bump the revision but retain no
        # history: an old window can only be answered with "rebuild".
        base = diamond.revision
        diamond.replace_edge_delay(diamond.edges[0], _delay(9.0))
        assert diamond.changes_since(base) is None
        assert diamond.changes_since(diamond.revision).empty

    def test_changes_since_coalesces(self, diamond):
        diamond.enable_journal()
        base = diamond.revision
        edge = diamond.edges[0]
        diamond.replace_edge_delay(edge, _delay(1.0))
        diamond.replace_edge_delay(edge, _delay(2.0))
        transient = diamond.add_edge("u", "w", _delay(3.0))
        diamond.remove_edge(transient)
        diamond.remove_vertex("w")
        removed = diamond.edges[1]
        diamond.remove_edge(removed)
        delta = diamond.changes_since(base)
        assert delta.retimed_edges == (edge.edge_id,)
        assert delta.added_edges == ()
        assert delta.removed_edges == ((removed.edge_id, removed.source, removed.sink),)
        assert delta.added_vertices == ()
        assert delta.removed_vertices == ()
        assert not delta.io_changed

    def test_removed_and_readded_vertex_is_in_both_lists(self, diamond):
        diamond.enable_journal()
        base = diamond.revision
        for edge in list(diamond.fanin_edges("u")) + list(diamond.fanout_edges("u")):
            diamond.remove_edge(edge)
        diamond.remove_vertex("u")
        diamond.add_edge("a", "u", _delay(1.0))
        delta = diamond.changes_since(base)
        assert "u" in delta.removed_vertices
        assert "u" in delta.added_vertices

    def test_empty_window(self, diamond):
        delta = diamond.changes_since(diamond.revision)
        assert delta.empty
        assert not delta.structural

    def test_ahead_revision_raises(self, diamond):
        with pytest.raises(TimingGraphError, match="stale"):
            diamond.changes_since(diamond.revision + 1)

    def test_journal_overflow_returns_none(self):
        graph = TimingGraph("tiny", 0, journal_limit=4)
        graph.enable_journal()
        base = graph.revision
        for index in range(10):
            graph.add_edge("a", "b%d" % index, _delay(1.0))
        assert graph.changes_since(base) is None
        assert graph.changes_since(graph.revision).empty

    def test_copy_preserves_edge_ids_and_revision(self, diamond):
        edge = diamond.edges[0]
        diamond.replace_edge_delay(edge, _delay(7.0))
        clone = diamond.copy()
        assert clone.revision == diamond.revision
        assert [e.edge_id for e in clone.edges] == [e.edge_id for e in diamond.edges]
        assert clone.edge(edge.edge_id).delay.nominal == 7.0
        # The copy's journal starts at the preserved revision: a consumer
        # synced exactly there sees an empty window...
        assert clone.changes_since(diamond.revision).empty
        # ...and new ids never collide with preserved ones.
        new_edge = clone.add_edge("u", "v", _delay(1.0))
        assert new_edge.edge_id not in {e.edge_id for e in diamond.edges}

    def test_copy_journal_does_not_cover_older_revisions(self, diamond):
        base = diamond.revision
        diamond.add_edge("u", "w", _delay(1.0))
        clone = diamond.copy()
        assert clone.changes_since(base) is None  # pre-copy history dropped
