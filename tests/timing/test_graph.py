"""Tests of the timing-graph data structure."""

import pytest

from repro.core.canonical import CanonicalForm
from repro.errors import TimingGraphError
from repro.timing.graph import TimingGraph


def _delay(value: float) -> CanonicalForm:
    return CanonicalForm(value, 0.1 * value, None, 0.05 * value)


@pytest.fixture
def diamond() -> TimingGraph:
    graph = TimingGraph("diamond", 0)
    graph.mark_input("a")
    graph.mark_output("z")
    graph.add_edge("a", "u", _delay(10.0))
    graph.add_edge("a", "v", _delay(20.0))
    graph.add_edge("u", "z", _delay(5.0))
    graph.add_edge("v", "z", _delay(1.0))
    return graph


class TestConstruction:
    def test_counts(self, diamond):
        assert diamond.num_vertices == 4
        assert diamond.num_edges == 4
        assert diamond.inputs == ("a",)
        assert diamond.outputs == ("z",)

    def test_parallel_edges_allowed(self, diamond):
        diamond.add_edge("u", "z", _delay(7.0))
        assert diamond.num_edges == 5
        assert len(diamond.fanin_edges("z")) == 3

    def test_self_loop_rejected(self, diamond):
        with pytest.raises(TimingGraphError):
            diamond.add_edge("u", "u", _delay(1.0))

    def test_add_vertex_idempotent(self, diamond):
        diamond.add_vertex("u")
        assert diamond.num_vertices == 4

    def test_mark_input_twice(self, diamond):
        diamond.mark_input("a")
        assert diamond.inputs == ("a",)


class TestQueries:
    def test_fanin_fanout(self, diamond):
        assert diamond.fanin_count("z") == 2
        assert diamond.fanout_count("a") == 2
        assert {edge.sink for edge in diamond.fanout_edges("a")} == {"u", "v"}
        assert diamond.predecessors("z") == ("u", "v")
        assert diamond.successors("a") == ("u", "v")

    def test_unknown_vertex_raises(self, diamond):
        with pytest.raises(TimingGraphError):
            diamond.fanin_edges("ghost")

    def test_edge_lookup(self, diamond):
        edge = diamond.edges[0]
        assert diamond.edge(edge.edge_id) is edge
        assert diamond.has_edge(edge.edge_id)
        with pytest.raises(TimingGraphError):
            diamond.edge(999)

    def test_internal_vertices(self, diamond):
        assert set(diamond.internal_vertices()) == {"u", "v"}

    def test_is_input_output(self, diamond):
        assert diamond.is_input("a")
        assert diamond.is_output("z")
        assert not diamond.is_input("u")


class TestMutation:
    def test_remove_edge(self, diamond):
        edge = diamond.fanin_edges("z")[0]
        diamond.remove_edge(edge)
        assert diamond.num_edges == 3
        with pytest.raises(TimingGraphError):
            diamond.remove_edge(edge)

    def test_remove_vertex_requires_no_edges(self, diamond):
        with pytest.raises(TimingGraphError):
            diamond.remove_vertex("u")
        for edge in list(diamond.fanin_edges("u")) + list(diamond.fanout_edges("u")):
            diamond.remove_edge(edge)
        diamond.remove_vertex("u")
        assert not diamond.has_vertex("u")

    def test_cannot_remove_io_vertex(self, diamond):
        for edge in list(diamond.fanout_edges("a")):
            diamond.remove_edge(edge)
        with pytest.raises(TimingGraphError):
            diamond.remove_vertex("a")

    def test_replace_edge_delay(self, diamond):
        edge = diamond.edges[0]
        diamond.replace_edge_delay(edge, _delay(99.0))
        assert diamond.edge(edge.edge_id).delay.nominal == 99.0


class TestAnalysis:
    def test_topological_order(self, diamond):
        order = diamond.topological_order()
        assert order.index("a") < order.index("u") < order.index("z")

    def test_cycle_detection(self):
        graph = TimingGraph("cyclic")
        graph.add_edge("a", "b", _delay(1.0))
        graph.add_edge("b", "c", _delay(1.0))
        graph.add_edge("c", "a", _delay(1.0))
        with pytest.raises(TimingGraphError):
            graph.topological_order()

    def test_validate_rejects_input_with_fanin(self):
        graph = TimingGraph("bad")
        graph.mark_input("a")
        graph.mark_input("b")
        graph.add_edge("a", "b", _delay(1.0))
        with pytest.raises(TimingGraphError):
            graph.validate()

    def test_copy_is_independent(self, diamond):
        clone = diamond.copy("clone")
        clone.remove_edge(clone.edges[0])
        assert diamond.num_edges == 4
        assert clone.num_edges == 3
        assert clone.name == "clone"
        assert clone.inputs == diamond.inputs

    def test_repr(self, diamond):
        assert "diamond" in repr(diamond)
