"""Tests of timing-graph construction from netlists."""

import pytest

from repro.errors import TimingGraphError
from repro.liberty.library import Library
from repro.netlist.netlist import Gate, Netlist
from repro.placement.placer import place_netlist
from repro.timing.builder import build_timing_graph, default_variation_for


class TestGraphShape:
    def test_vertex_per_net_edge_per_connection(self, tiny_netlist, library):
        graph = build_timing_graph(tiny_netlist, library)
        assert graph.num_vertices == len(tiny_netlist.primary_inputs) + tiny_netlist.num_gates
        assert graph.num_edges == tiny_netlist.num_connections
        assert set(graph.inputs) == set(tiny_netlist.primary_inputs)
        assert set(graph.outputs) == set(tiny_netlist.primary_outputs)

    def test_edges_follow_connectivity(self, tiny_netlist, library):
        graph = build_timing_graph(tiny_netlist, library)
        sinks = {edge.sink for edge in graph.fanout_edges("n1")}
        assert sinks == {"n3", "n4"}

    def test_defaults_are_built_automatically(self, tiny_netlist):
        graph = build_timing_graph(tiny_netlist)
        assert graph.num_edges == tiny_netlist.num_connections
        assert graph.num_locals >= 1

    def test_graph_name(self, tiny_netlist, library):
        graph = build_timing_graph(tiny_netlist, library, name="custom")
        assert graph.name == "custom"


class TestDelays:
    def test_delays_are_positive_with_variation(self, tiny_netlist, library):
        graph = build_timing_graph(tiny_netlist, library)
        for edge in graph.edges:
            assert edge.delay.nominal > 0.0
            assert edge.delay.std > 0.0
            assert edge.delay.num_locals == graph.num_locals

    def test_sigma_fraction_respected(self, tiny_netlist, library):
        placement = place_netlist(tiny_netlist, library)
        variation = default_variation_for(tiny_netlist, placement, sigma_fraction=0.2)
        graph = build_timing_graph(tiny_netlist, library, placement, variation)
        for edge in graph.edges:
            ratio = edge.delay.std / edge.delay.nominal
            # sigma_scale of complex cells may raise the ratio slightly.
            assert 0.18 <= ratio <= 0.26

    def test_higher_fanout_increases_delay(self, library):
        gates = [
            Gate("u1", "INV", ("a",), "n1"),
            Gate("u2", "INV", ("a",), "n2"),
            Gate("u3", "AND", ("n1", "n2"), "z1"),
            Gate("u4", "AND", ("n1", "a"), "z2"),
            Gate("u5", "AND", ("n1", "n2"), "z3"),
        ]
        netlist = Netlist("fanout", ["a"], ["z1", "z2", "z3"], gates)
        graph = build_timing_graph(netlist, library)
        # n1 drives three loads, n2 only two: u1's arc is slower than u2's.
        u1_edge = [edge for edge in graph.fanin_edges("n1")][0]
        u2_edge = [edge for edge in graph.fanin_edges("n2")][0]
        assert u1_edge.delay.nominal > u2_edge.delay.nominal

    def test_cells_in_same_grid_are_correlated(self, tiny_netlist, library):
        graph = build_timing_graph(tiny_netlist, library)
        edges = graph.edges
        assert edges[0].delay.correlation(edges[-1].delay) > 0.3


class TestErrors:
    def test_unsupported_gate_function(self, library):
        netlist = Netlist(
            "bad", ["a", "b", "c"], ["z"], [Gate("u1", "MAJ", ("a", "b", "c"), "z")]
        )
        with pytest.raises(TimingGraphError):
            build_timing_graph(netlist, library)

    def test_empty_library(self, tiny_netlist):
        with pytest.raises(TimingGraphError):
            build_timing_graph(tiny_netlist, Library("empty"))
