"""Parity tests: batched levelized propagation vs the object-level engine.

The batched engine folds every vertex's fanin/fanout candidates in the same
order as the object-level reference loop, so the two must agree to
floating-point round-off (1e-9) on every vertex — asserted here on the
real ISCAS c17 netlist, on a generated array multiplier and on an ISCAS85
surrogate.
"""

import numpy as np
import pytest

from repro.core.canonical import CanonicalForm
from repro.liberty.library import standard_library
from repro.netlist.iscas85 import iscas85_surrogate
from repro.netlist.multiplier import array_multiplier
from repro.netlist.netlist import Gate, Netlist
from repro.placement.placer import place_netlist
from repro.timing.arrays import GraphArrays
from repro.timing.builder import build_timing_graph, default_variation_for
from repro.timing.graph import TimingGraph
from repro.timing.propagation import (
    circuit_delay,
    compute_slacks,
    compute_slacks_batch,
    longest_path_to_outputs,
    propagate_arrival_times,
    propagate_arrival_times_batch,
    propagate_required_times,
)
from repro.timing.sta import corner_sta, deterministic_longest_path


def c17_netlist() -> Netlist:
    """The textbook ISCAS c17 circuit: six NAND2 gates, five PIs, two POs."""
    gates = [
        Gate("g10", "NAND", ("i1", "i3"), "n10"),
        Gate("g11", "NAND", ("i3", "i4"), "n11"),
        Gate("g16", "NAND", ("i2", "n11"), "n16"),
        Gate("g19", "NAND", ("n11", "i5"), "n19"),
        Gate("g22", "NAND", ("n10", "n16"), "o22"),
        Gate("g23", "NAND", ("n16", "n19"), "o23"),
    ]
    netlist = Netlist("c17", ["i1", "i2", "i3", "i4", "i5"], ["o22", "o23"], gates)
    netlist.validate()
    return netlist


def _graph_for(netlist: Netlist) -> TimingGraph:
    library = standard_library()
    placement = place_netlist(netlist, library)
    variation = default_variation_for(netlist, placement)
    return build_timing_graph(netlist, library, placement, variation)


@pytest.fixture(scope="module", params=["c17", "mult4", "c432"])
def parity_graph(request) -> TimingGraph:
    if request.param == "c17":
        return _graph_for(c17_netlist())
    if request.param == "mult4":
        return _graph_for(array_multiplier(4))
    return _graph_for(iscas85_surrogate("c432"))


def _assert_dicts_close(batch_result, object_result, rtol=1e-9, atol=1e-9):
    assert set(batch_result) == set(object_result)
    for vertex, batch_form in batch_result.items():
        assert batch_form.is_close(object_result[vertex], rtol=rtol, atol=atol), vertex


class TestArrivalParity:
    def test_arrivals_match_object_engine(self, parity_graph):
        batched = propagate_arrival_times(parity_graph, engine="batch")
        reference = propagate_arrival_times(parity_graph, engine="object")
        _assert_dicts_close(batched, reference)

    def test_arrivals_with_input_offsets(self, parity_graph):
        offsets = {
            name: CanonicalForm(10.0 + 2.0 * position, 0.5, [0.25], 0.1)
            for position, name in enumerate(parity_graph.inputs)
        }
        batched = propagate_arrival_times(parity_graph, offsets, engine="batch")
        reference = propagate_arrival_times(parity_graph, offsets, engine="object")
        _assert_dicts_close(batched, reference)

    def test_circuit_delay_close_to_object(self, parity_graph):
        # The output reduction genuinely differs (balanced tree vs
        # sequential fold, and Clark's max is not associative), so the
        # comparison is loose; the arrival parity above is the strict one.
        batched = circuit_delay(parity_graph, engine="batch")
        reference = circuit_delay(parity_graph, engine="object")
        assert batched.mean == pytest.approx(reference.mean, rel=1e-3)
        assert batched.std == pytest.approx(reference.std, rel=5e-2)

    def test_minus_infinity_masks_fall_back(self, parity_graph):
        # Non-finite seeds route to the object engine in every mode.
        masks = {name: CanonicalForm.minus_infinity(parity_graph.num_locals)
                 for name in parity_graph.inputs[1:]}
        masks[parity_graph.inputs[0]] = CanonicalForm.constant(
            0.0, parity_graph.num_locals
        )
        batched = propagate_arrival_times(parity_graph, masks, engine="batch")
        reference = propagate_arrival_times(parity_graph, masks, engine="object")
        _assert_dicts_close(batched, reference)


class TestBackwardParity:
    def test_required_times_match_object_engine(self, parity_graph):
        constraint = CanonicalForm(500.0, 1.0, [0.5], 0.25)
        required = {vertex: constraint for vertex in parity_graph.outputs}
        batched = propagate_required_times(parity_graph, required, engine="batch")
        reference = propagate_required_times(parity_graph, required, engine="object")
        _assert_dicts_close(batched, reference)

    def test_longest_path_to_outputs_matches(self, parity_graph):
        batched = longest_path_to_outputs(parity_graph, engine="batch")
        reference = longest_path_to_outputs(parity_graph, engine="object")
        _assert_dicts_close(batched, reference)

    def test_slacks_match_object_engine(self, parity_graph):
        constraint = CanonicalForm.constant(1000.0, parity_graph.num_locals)
        batched = compute_slacks(parity_graph, constraint, engine="batch")
        reference = compute_slacks(parity_graph, constraint, engine="object")
        _assert_dicts_close(batched, reference)


class TestBatchStructures:
    def test_vertex_times_accessors(self, parity_graph):
        times = propagate_arrival_times_batch(parity_graph)
        as_dict = times.as_dict()
        for vertex in parity_graph.vertices:
            form = times.form(vertex)
            if form is None:
                assert vertex not in as_dict
            else:
                assert form == as_dict[vertex]
        assert times.form("__does_not_exist__") is None

    def test_shared_arrays_reused_across_passes(self, parity_graph):
        arrays = GraphArrays.from_graph(parity_graph)
        constraint = CanonicalForm.constant(1000.0, parity_graph.num_locals)
        slacks = compute_slacks_batch(parity_graph, constraint, arrays=arrays)
        assert slacks.arrays is arrays
        reference = compute_slacks(parity_graph, constraint, engine="object")
        _assert_dicts_close(slacks.as_dict(), reference)

    def test_level_schedule_is_topological(self, parity_graph):
        arrays = GraphArrays.from_graph(parity_graph)
        seen = np.zeros(parity_graph.num_vertices, dtype=bool)
        seen[arrays.input_rows] = True
        no_fanin = [
            arrays.vertex_index[v]
            for v in parity_graph.vertices
            if parity_graph.fanin_count(v) == 0
        ]
        seen[no_fanin] = True
        for level in arrays.forward_levels():
            for position, row in enumerate(level.vertex_rows):
                edge_rows = level.edge_matrix[position]
                edge_rows = edge_rows[edge_rows >= 0]
                # Every fanin source was finalised in an earlier level.
                assert seen[arrays.edge_source[edge_rows]].all()
            seen[level.vertex_rows] = True
        assert seen.all()

    def test_edge_matrix_preserves_fanin_order(self, parity_graph):
        arrays = GraphArrays.from_graph(parity_graph)
        for level in arrays.forward_levels():
            for position, row in enumerate(level.vertex_rows):
                vertex = list(parity_graph.vertices)[row]
                expected = [
                    arrays.edge_rows[edge.edge_id]
                    for edge in parity_graph.fanin_edges(vertex)
                ]
                stored = level.edge_matrix[position]
                assert stored[stored >= 0].tolist() == expected


class TestCornerStaParity:
    def test_vectorized_longest_path_matches_reference(self, parity_graph):
        # Reference implementation: the original per-edge dictionary loop.
        def reference(graph, sigma_offset):
            arrivals = {vertex: 0.0 for vertex in graph.inputs}
            for vertex in graph.topological_order():
                for edge in graph.fanin_edges(vertex):
                    if edge.source not in arrivals:
                        continue
                    delay = edge.delay.nominal + sigma_offset * edge.delay.std
                    candidate = arrivals[edge.source] + delay
                    if candidate > arrivals.get(vertex, float("-inf")):
                        arrivals[vertex] = candidate
            return max(arrivals[v] for v in graph.outputs if v in arrivals)

        for sigma in (0.0, 3.0, -3.0):
            assert deterministic_longest_path(parity_graph, sigma) == pytest.approx(
                reference(parity_graph, sigma), rel=1e-12
            )

    def test_corner_report_ordering(self, parity_graph):
        report = corner_sta(parity_graph, sigma_corner=3.0)
        assert report.best <= report.nominal <= report.worst
