"""Tests of the deterministic corner STA baseline."""

import pytest

from repro.core.canonical import CanonicalForm
from repro.errors import TimingGraphError
from repro.timing.graph import TimingGraph
from repro.timing.propagation import circuit_delay
from repro.timing.sta import CornerReport, corner_sta, deterministic_longest_path


@pytest.fixture
def graph() -> TimingGraph:
    graph = TimingGraph("g")
    graph.mark_input("a")
    graph.mark_output("z")
    graph.add_edge("a", "m", CanonicalForm(10.0, 1.0, None, 1.0))
    graph.add_edge("m", "z", CanonicalForm(5.0, 0.5, None, 0.5))
    graph.add_edge("a", "z", CanonicalForm(12.0, 2.0, None, 1.0))
    return graph


class TestDeterministicLongestPath:
    def test_nominal(self, graph):
        assert deterministic_longest_path(graph) == 15.0

    def test_sigma_offset_changes_critical_path(self, graph):
        # At +3 sigma the direct edge (larger sigma) becomes critical:
        # 12 + 3*sqrt(5) = 18.7 vs chain 15 + 3*(sqrt(2)+sqrt(0.5)).
        worst = deterministic_longest_path(graph, 3.0)
        assert worst == pytest.approx(15.0 + 3.0 * (2.0 ** 0.5 + 0.5 ** 0.5), rel=1e-9)

    def test_unreachable_output_raises(self):
        graph = TimingGraph("bad")
        graph.mark_input("a")
        graph.mark_output("z")
        graph.add_vertex("z")
        with pytest.raises(TimingGraphError):
            deterministic_longest_path(graph)


class TestCornerSta:
    def test_report_ordering(self, graph):
        report = corner_sta(graph)
        assert report.best < report.nominal < report.worst
        assert report.spread == pytest.approx(report.worst - report.best)
        assert report.pessimism > 1.0

    def test_negative_sigma_rejected(self, graph):
        with pytest.raises(ValueError):
            corner_sta(graph, -1.0)

    def test_corner_sta_more_pessimistic_than_ssta(self, adder_graph):
        # The paper's motivation: per-edge worst-casing exceeds the
        # statistical 3-sigma point of the true delay distribution.
        report = corner_sta(adder_graph, 3.0)
        delay = circuit_delay(adder_graph)
        assert report.worst > delay.mean + 3.0 * delay.std

    def test_zero_sigma_collapses_corners(self, graph):
        report = corner_sta(graph, 0.0)
        assert report.worst == report.nominal == report.best
