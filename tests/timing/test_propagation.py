"""Tests of object-level arrival/required-time propagation."""

import numpy as np
import pytest

from repro.core.canonical import CanonicalForm
from repro.errors import TimingGraphError
from repro.montecarlo.flat import simulate_graph_delay
from repro.timing.graph import TimingGraph
from repro.timing.propagation import (
    circuit_delay,
    compute_slacks,
    longest_path_to_outputs,
    propagate_arrival_times,
    propagate_required_times,
)
from repro.timing.sta import deterministic_longest_path


def _delay(value: float, sigma: float = 0.0) -> CanonicalForm:
    return CanonicalForm(value, sigma, None, 0.0)


@pytest.fixture
def chain() -> TimingGraph:
    graph = TimingGraph("chain")
    graph.mark_input("a")
    graph.mark_output("z")
    graph.add_edge("a", "m", _delay(10.0))
    graph.add_edge("m", "z", _delay(5.0))
    return graph


@pytest.fixture
def diamond() -> TimingGraph:
    graph = TimingGraph("diamond")
    graph.mark_input("a")
    graph.mark_output("z")
    graph.add_edge("a", "u", _delay(10.0))
    graph.add_edge("a", "v", _delay(2.0))
    graph.add_edge("u", "z", _delay(3.0))
    graph.add_edge("v", "z", _delay(4.0))
    return graph


class TestArrivalTimes:
    def test_deterministic_chain(self, chain):
        arrivals = propagate_arrival_times(chain)
        assert arrivals["m"].nominal == 10.0
        assert arrivals["z"].nominal == 15.0

    def test_deterministic_diamond_takes_max(self, diamond):
        arrivals = propagate_arrival_times(diamond)
        assert arrivals["z"].nominal == 13.0

    def test_input_arrival_offsets(self, chain):
        arrivals = propagate_arrival_times(chain, {"a": _delay(100.0)})
        assert arrivals["z"].nominal == 115.0

    def test_unreachable_vertex_absent(self):
        graph = TimingGraph("partial")
        graph.mark_input("a")
        graph.mark_output("z")
        graph.add_edge("a", "z", _delay(1.0))
        graph.add_edge("orphan", "z", _delay(50.0))
        arrivals = propagate_arrival_times(graph)
        assert "orphan" not in arrivals
        # The orphan vertex must not contribute to the output arrival.
        assert arrivals["z"].nominal == 1.0

    def test_circuit_delay_matches_output_arrival(self, diamond):
        assert circuit_delay(diamond).nominal == 13.0

    def test_circuit_delay_requires_reachable_output(self):
        graph = TimingGraph("broken")
        graph.mark_input("a")
        graph.mark_output("z")
        graph.add_vertex("z")
        with pytest.raises(TimingGraphError):
            circuit_delay(graph)

    def test_statistical_propagation_matches_monte_carlo(self, adder_graph):
        analytical = circuit_delay(adder_graph)
        simulated = simulate_graph_delay(adder_graph, num_samples=4000, seed=3)
        assert analytical.mean == pytest.approx(simulated.mean, rel=0.03)
        assert analytical.std == pytest.approx(simulated.std, rel=0.15)

    def test_statistical_mean_at_least_deterministic(self, adder_graph):
        # The mean of the statistical maximum exceeds the deterministic
        # longest path through nominal delays.
        assert circuit_delay(adder_graph).mean >= deterministic_longest_path(adder_graph) - 1e-9


class TestBackwardPropagation:
    def test_longest_path_to_outputs(self, diamond):
        to_output = longest_path_to_outputs(diamond)
        assert to_output["z"].nominal == 0.0
        assert to_output["u"].nominal == 3.0
        assert to_output["v"].nominal == 4.0
        assert to_output["a"].nominal == 13.0

    def test_required_times(self, diamond):
        required = propagate_required_times(
            diamond, {"z": _delay(20.0)}
        )
        assert required["z"].nominal == 20.0
        assert required["u"].nominal == 17.0
        assert required["a"].nominal == pytest.approx(7.0)

    def test_slacks(self, diamond):
        slacks = compute_slacks(diamond, _delay(20.0))
        # Slack at the output: 20 - 13 = 7.
        assert slacks["z"].nominal == pytest.approx(7.0)
        # The non-critical branch has more slack than the critical one.
        assert slacks["v"].nominal > slacks["u"].nominal

    def test_slack_consistency_with_arrivals(self, adder_graph):
        constraint = CanonicalForm.constant(10000.0, adder_graph.num_locals)
        slacks = compute_slacks(adder_graph, constraint)
        arrivals = propagate_arrival_times(adder_graph)
        for output in adder_graph.outputs:
            expected = constraint.nominal - arrivals[output].nominal
            assert slacks[output].nominal == pytest.approx(expected, rel=1e-9)
