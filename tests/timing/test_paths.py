"""Tests of critical-path enumeration."""

import pytest

from repro.core.canonical import CanonicalForm
from repro.errors import TimingGraphError
from repro.timing.graph import TimingGraph
from repro.timing.paths import enumerate_critical_paths
from repro.timing.propagation import circuit_delay
from repro.timing.sta import deterministic_longest_path


def _delay(value: float) -> CanonicalForm:
    return CanonicalForm(value, 0.05 * value, None, 0.03 * value)


@pytest.fixture
def diamond() -> TimingGraph:
    graph = TimingGraph("diamond")
    graph.mark_input("a")
    graph.mark_output("z")
    graph.add_edge("a", "u", _delay(10.0))
    graph.add_edge("u", "z", _delay(10.0))
    graph.add_edge("a", "v", _delay(7.0))
    graph.add_edge("v", "z", _delay(7.0))
    graph.add_edge("a", "z", _delay(5.0))
    return graph


class TestEnumeration:
    def test_paths_in_decreasing_order(self, diamond):
        paths = enumerate_critical_paths(diamond, num_paths=3)
        nominals = [path.delay.nominal for path in paths]
        assert nominals == sorted(nominals, reverse=True)
        assert nominals[0] == pytest.approx(20.0)
        assert nominals[1] == pytest.approx(14.0)
        assert nominals[2] == pytest.approx(5.0)

    def test_path_structure(self, diamond):
        paths = enumerate_critical_paths(diamond, num_paths=1)
        critical = paths[0]
        assert critical.vertices == ("a", "u", "z")
        assert critical.start == "a"
        assert critical.end == "z"
        assert critical.length == 2

    def test_most_critical_matches_deterministic_longest_path(self, adder_graph):
        paths = enumerate_critical_paths(adder_graph, num_paths=1)
        assert paths[0].delay.nominal == pytest.approx(
            deterministic_longest_path(adder_graph), rel=1e-9
        )

    def test_requesting_more_paths_than_exist(self, diamond):
        paths = enumerate_critical_paths(diamond, num_paths=50)
        assert len(paths) == 3

    def test_path_delay_consistent_with_edges(self, adder_graph):
        for path in enumerate_critical_paths(adder_graph, num_paths=5):
            total = sum(edge.delay.nominal for edge in path.edges)
            assert path.delay.nominal == pytest.approx(total, rel=1e-9)
            assert path.delay.std > 0.0

    def test_sigma_weight_can_change_ranking(self):
        graph = TimingGraph("race")
        graph.mark_input("a")
        graph.mark_output("z")
        # Slightly shorter nominal but far more variable path.
        graph.add_edge("a", "z", CanonicalForm(99.0, 20.0, None, 10.0))
        graph.add_edge("a", "m", CanonicalForm(50.0, 0.5, None, 0.5))
        graph.add_edge("m", "z", CanonicalForm(50.0, 0.5, None, 0.5))
        nominal_first = enumerate_critical_paths(graph, num_paths=1, sigma_weight=0.0)[0]
        sigma_first = enumerate_critical_paths(graph, num_paths=1, sigma_weight=3.0)[0]
        assert nominal_first.length == 2
        assert sigma_first.length == 1

    def test_violation_probability(self, diamond):
        critical = enumerate_critical_paths(diamond, num_paths=1)[0]
        assert critical.violation_probability(0.0) == pytest.approx(1.0)
        assert critical.violation_probability(1e6) == pytest.approx(0.0)
        at_mean = critical.violation_probability(critical.delay.mean)
        assert at_mean == pytest.approx(0.5, abs=1e-6)

    def test_circuit_delay_dominates_every_path_mean(self, adder_graph):
        overall = circuit_delay(adder_graph)
        for path in enumerate_critical_paths(adder_graph, num_paths=10):
            assert overall.mean >= path.delay.nominal - 1e-6


class TestValidation:
    def test_requires_io(self):
        graph = TimingGraph("no_io")
        graph.add_edge("a", "b", _delay(1.0))
        with pytest.raises(TimingGraphError):
            enumerate_critical_paths(graph)

    def test_invalid_count(self, diamond):
        with pytest.raises(ValueError):
            enumerate_critical_paths(diamond, num_paths=0)

    def test_unreachable_output_yields_no_paths(self):
        graph = TimingGraph("island")
        graph.mark_input("a")
        graph.mark_output("z")
        graph.add_vertex("z")
        graph.add_edge("a", "b", _delay(1.0))
        assert enumerate_critical_paths(graph, num_paths=3) == []
