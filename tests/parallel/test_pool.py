"""Engine selection, worker resolution and lifecycle of the sharded pool."""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap
import time

import numpy as np
import pytest

from repro.montecarlo.flat import MC_CHUNK_BUDGET_ENV, mc_chunk_budget
from repro.parallel.pool import (
    RETRY_BACKOFF_ENV,
    TASK_RETRIES_ENV,
    TASK_TIMEOUT_ENV,
    WORKERS_ENV,
    ShardedExecutor,
    maybe_executor,
    resolve_workers,
    retry_backoff,
    task_retries,
    task_timeout,
)
from repro.parallel.shm import shared_memory_available
from repro.timing.arrays import GraphArrays
from repro.timing.sta import longest_path_from_arrays

SRC_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "src",
)


# ----------------------------------------------------------------------
# Worker-count resolution and environment overrides
# ----------------------------------------------------------------------
def test_explicit_workers_beat_the_environment(monkeypatch):
    monkeypatch.setenv(WORKERS_ENV, "4")
    assert resolve_workers(2) == 2
    assert resolve_workers(None) == 4


def test_workers_default_to_one(monkeypatch):
    monkeypatch.delenv(WORKERS_ENV, raising=False)
    assert resolve_workers(None) == 1


@pytest.mark.parametrize("raw", ["two", "", "1.5"])
def test_non_integer_workers_env_raises(monkeypatch, raw):
    monkeypatch.setenv(WORKERS_ENV, raw)
    with pytest.raises(ValueError, match=WORKERS_ENV):
        resolve_workers(None)


@pytest.mark.parametrize("raw", ["0", "-3"])
def test_non_positive_workers_env_raises(monkeypatch, raw):
    monkeypatch.setenv(WORKERS_ENV, raw)
    with pytest.raises(ValueError, match="positive"):
        resolve_workers(None)


@pytest.mark.parametrize("workers", [0, -1])
def test_non_positive_explicit_workers_raise(workers):
    with pytest.raises(ValueError, match="positive"):
        ShardedExecutor(workers=workers)


@pytest.mark.parametrize("workers", [2.7, 1.5, "3"])
def test_non_integral_explicit_workers_raise(workers):
    # int() would silently truncate 2.7 -> 2 and shard less than asked.
    with pytest.raises(ValueError, match="integral"):
        resolve_workers(workers)


def test_integral_float_workers_accepted():
    assert resolve_workers(2.0) == 2


@pytest.mark.parametrize("raw", ["lots", "0", "-8"])
def test_chunk_budget_env_validation(monkeypatch, raw):
    monkeypatch.setenv(MC_CHUNK_BUDGET_ENV, raw)
    with pytest.raises(ValueError, match=MC_CHUNK_BUDGET_ENV):
        mc_chunk_budget()


def test_chunk_budget_env_override(monkeypatch):
    monkeypatch.setenv(MC_CHUNK_BUDGET_ENV, "1048576")
    assert mc_chunk_budget() == 1048576


@pytest.mark.parametrize("raw", ["soon", "", "0", "-2", "nan", "inf"])
def test_task_timeout_env_validation(monkeypatch, raw):
    monkeypatch.setenv(TASK_TIMEOUT_ENV, raw)
    with pytest.raises(ValueError, match=TASK_TIMEOUT_ENV):
        task_timeout()


def test_task_timeout_env_resolution(monkeypatch):
    monkeypatch.delenv(TASK_TIMEOUT_ENV, raising=False)
    assert task_timeout() is None
    monkeypatch.setenv(TASK_TIMEOUT_ENV, "12.5")
    assert task_timeout() == 12.5


@pytest.mark.parametrize("raw", ["many", "1.5", "-1"])
def test_task_retries_env_validation(monkeypatch, raw):
    monkeypatch.setenv(TASK_RETRIES_ENV, raw)
    with pytest.raises(ValueError, match=TASK_RETRIES_ENV):
        task_retries()


def test_task_retries_env_resolution(monkeypatch):
    monkeypatch.delenv(TASK_RETRIES_ENV, raising=False)
    assert task_retries() == 2
    monkeypatch.setenv(TASK_RETRIES_ENV, "0")
    assert task_retries() == 0


@pytest.mark.parametrize("raw", ["slow", "-0.1", "nan"])
def test_retry_backoff_env_validation(monkeypatch, raw):
    monkeypatch.setenv(RETRY_BACKOFF_ENV, raw)
    with pytest.raises(ValueError, match=RETRY_BACKOFF_ENV):
        retry_backoff()


def test_retry_backoff_env_resolution(monkeypatch):
    monkeypatch.delenv(RETRY_BACKOFF_ENV, raising=False)
    assert retry_backoff() == 0.05
    monkeypatch.setenv(RETRY_BACKOFF_ENV, "0")
    assert retry_backoff() == 0.0


# ----------------------------------------------------------------------
# Engine selection and graceful fallback
# ----------------------------------------------------------------------
def test_unknown_engine_rejected():
    with pytest.raises(ValueError, match="engine"):
        ShardedExecutor(workers=2, engine="thread")


def test_single_worker_falls_back_to_serial(adder_graph):
    arrays = GraphArrays.from_graph(adder_graph)
    with ShardedExecutor(workers=1, engine="auto") as executor:
        assert executor.engine == "serial"
        assert executor.fallback_reason == "single worker requested"
        results = executor.run("corner_delay", [0.0, 1.5], arrays)
    assert results == [
        longest_path_from_arrays(arrays, 0.0),
        longest_path_from_arrays(arrays, 1.5),
    ]


def test_maybe_executor_resolution(monkeypatch):
    monkeypatch.delenv(WORKERS_ENV, raising=False)
    # Nothing requested anywhere: the consumer runs its plain serial path.
    assert maybe_executor(None, None) is None
    # A given executor is passed through untouched.
    with ShardedExecutor(workers=1) as executor:
        assert maybe_executor(None, executor) is executor
        assert maybe_executor(3, executor) is executor


def test_maybe_executor_reads_the_environment(monkeypatch):
    monkeypatch.setenv(WORKERS_ENV, "1")
    executor = maybe_executor(None, None)
    assert executor is not None
    assert executor.workers == 1
    assert executor.engine == "serial"


def test_unknown_task_fails_before_any_work(adder_graph):
    arrays = GraphArrays.from_graph(adder_graph)
    with ShardedExecutor(workers=1) as executor:
        with pytest.raises(KeyError):
            executor.run("no_such_task", [1, 2, 3], arrays)


def test_run_after_close_raises():
    executor = ShardedExecutor(workers=1)
    executor.close()
    executor.close()  # idempotent
    with pytest.raises(ValueError, match="closed"):
        executor.run("corner_delay", [0.0])


def test_empty_payloads_short_circuit(adder_graph):
    arrays = GraphArrays.from_graph(adder_graph)
    with ShardedExecutor(workers=1) as executor:
        assert executor.run("corner_delay", [], arrays) == []


# ----------------------------------------------------------------------
# Process engine
# ----------------------------------------------------------------------
def test_process_pool_matches_serial(adder_graph, process_executor):
    arrays = GraphArrays.from_graph(adder_graph)
    offsets = [0.0, 1.5, -1.5, 3.0]
    parallel = process_executor.run("corner_delay", offsets, arrays)
    assert parallel == [
        longest_path_from_arrays(arrays, offset) for offset in offsets
    ]


def test_snapshot_republished_only_on_revision_change(adder_graph, process_executor):
    graph = adder_graph.copy()
    graph.enable_journal()
    arrays = GraphArrays.from_graph(graph)
    process_executor.run("corner_delay", [0.0], arrays)
    first = process_executor._published[id(arrays)][1]
    process_executor.run("corner_delay", [1.0], arrays)
    assert process_executor._published[id(arrays)][1] is first
    # A graph edit moves the revision on: the stale snapshot is replaced.
    edge = graph.edges[0]
    graph.replace_edge_delay(edge, edge.delay.scale(1.1))
    arrays.refresh()
    process_executor.run("corner_delay", [0.0], arrays)
    second = process_executor._published[id(arrays)][1]
    assert second is not first
    assert first.closed
    assert second.revision == arrays.revision


@pytest.mark.skipif(
    not shared_memory_available(), reason="no working shared memory on this host"
)
def test_pool_shutdown_leaves_no_resource_tracker_noise(tmp_path):
    """End-to-end pool run in a fresh interpreter: clean tracker books.

    Worker attachments must stay invisible to the (shared) resource
    tracker; a stray register/unregister from a worker corrupts the
    owner's entry and sprays ``resource_tracker`` warnings or ``KeyError``
    tracebacks on interpreter exit.
    """
    script = tmp_path / "tracker_check.py"
    script.write_text(
        textwrap.dedent(
            """
            import sys
            sys.path.insert(0, %r)


            def main():
                import numpy as np
                from repro.core.canonical import CanonicalForm
                from repro.parallel.pool import ShardedExecutor
                from repro.timing.arrays import GraphArrays
                from repro.timing.graph import TimingGraph

                graph = TimingGraph("tracker", 2)
                graph.mark_input("a")
                graph.mark_output("z")
                graph.add_edge(
                    "a", "m", CanonicalForm(10.0, 0.5, np.array([0.2, 0.1]), 0.3)
                )
                graph.add_edge(
                    "m", "z", CanonicalForm(4.0, 0.1, np.array([0.05, 0.05]), 0.1)
                )
                arrays = GraphArrays.from_graph(graph)
                with ShardedExecutor(workers=2, engine="process") as executor:
                    results = executor.run("corner_delay", [0.0, 3.0, -3.0], arrays)
                assert len(results) == 3


            if __name__ == "__main__":
                main()
            """
            % SRC_DIR
        )
    )
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert completed.returncode == 0, completed.stderr
    assert "resource_tracker" not in completed.stderr, completed.stderr
    assert "Traceback" not in completed.stderr, completed.stderr


# ----------------------------------------------------------------------
# Bounded shutdown and nested-pool fallback
# ----------------------------------------------------------------------
def test_close_timeout_escalates_past_a_hung_worker(monkeypatch, tmp_path):
    """``close(timeout=)`` must return even with a worker wedged mid-task.

    A worker-hang plan (armed before pool creation, so the spawned workers
    inherit it) wedges the first task in a five-minute sleep; a patient
    ``Pool.join()`` would block on it.  The bounded close escalates to
    ``terminate()`` after the deadline and returns in seconds.
    """
    monkeypatch.setenv(
        "REPRO_FAULT_PLAN", "worker-hang@1:seconds=300"
    )
    executor = ShardedExecutor(workers=2, engine="auto")
    if executor.engine != "process":
        executor.close()
        pytest.skip("process engine unavailable: %s" % executor.fallback_reason)
    pool = executor._ensure_pool()
    # Fire-and-forget: the worker hangs inside the fault seam before the
    # task body runs, exactly like a stuck task in production.
    from repro.parallel.pool import _invoke

    pool.apply_async(_invoke, (("corner_delay", None, 0.0),))
    time.sleep(1.0)  # let the worker reach the sleep

    start = time.monotonic()
    executor.close(timeout=2.0)
    elapsed = time.monotonic() - start
    assert elapsed < 30.0, "close blocked on the hung worker (%.1fs)" % elapsed
    assert executor.closed


def test_worker_probe_reports_daemon_serial_fallback(process_executor):
    """Inside a real pool worker ``maybe_executor`` must resolve to ``None``.

    Pool workers are daemonic and may not spawn children; even with
    ``REPRO_WORKERS`` exported in the worker's environment the nested-pool
    guard has to choose the serial path — this exercises the guard in an
    actual daemon process rather than a monkeypatched stand-in.
    """
    (probe,) = process_executor.run(
        "worker_probe", [{"env": {WORKERS_ENV: "4"}}]
    )
    assert probe["pid"] != os.getpid()
    assert probe["daemon"] is True
    assert probe["maybe_executor"] is None


def test_atexit_close_warns_instead_of_passing_silently(monkeypatch):
    """The exit hook must surface shutdown failures as one warning."""
    import warnings

    from repro.parallel import pool as pool_module

    class _Unclosable:
        def close(self, timeout=None):
            raise OSError("semaphore already gone")

    monkeypatch.setattr(pool_module, "_SHARED", {99: _Unclosable()})
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        pool_module._close_shared_executors()
    assert pool_module._SHARED == {}
    (warning,) = [w for w in caught if w.category is RuntimeWarning]
    assert "semaphore already gone" in str(warning.message)
