"""Shared fixtures of the parallel-subsystem suite.

Spawning a process pool costs whole seconds (every worker re-imports
numpy and the package), so the pools are session-scoped and shared across
all modules of this directory; tests never mutate executor state beyond
running tasks.
"""

from __future__ import annotations

import pytest

from repro.parallel.pool import ShardedExecutor


def _process_pool(workers: int) -> ShardedExecutor:
    executor = ShardedExecutor(workers=workers, engine="auto")
    if executor.engine != "process":
        reason = executor.fallback_reason
        executor.close()
        pytest.skip("process engine unavailable: %s" % reason)
    return executor


@pytest.fixture(scope="session")
def process_executor():
    """A session-wide 2-worker process executor."""
    executor = _process_pool(2)
    yield executor
    executor.close()


@pytest.fixture(scope="session")
def four_worker_executor():
    """A session-wide 4-worker process executor (the {1,2,4} parity grid)."""
    executor = _process_pool(4)
    yield executor
    executor.close()
