"""Bit-identical parity of sharded analyses against their serial paths.

The sampling streams are counter-based per :data:`MC_SAMPLE_BLOCK` block
and moment accumulation folds per-block partial sums in ascending block
order on every engine, so sharding is *exactly* invariant: the property
tests below assert ``np.array_equal`` (not a tolerance) across worker
counts {1, 2, 4} and arbitrary chunk splits on the three acceptance
circuits (c17, the 4x4 multiplier, c432).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.montecarlo.flat import (
    MC_SAMPLE_BLOCK,
    simulate_graph_delay,
    simulate_io_delays,
)
from repro.parallel.shard import partition_samples
from repro.timing.sta import corner_sta, corner_sta_parallel, corner_sweep

DELAY_SAMPLES = 600  # spans five 128-sample blocks
IO_SAMPLES = 384  # three blocks, still partitionable four ways


# ----------------------------------------------------------------------
# Partitioner properties
# ----------------------------------------------------------------------
@pytest.mark.parametrize("num_samples", [1, 127, 128, 600, 1000])
@pytest.mark.parametrize("parts", [1, 2, 4, 7])
def test_partition_samples_covers_exactly(num_samples, parts):
    ranges = partition_samples(num_samples, parts, MC_SAMPLE_BLOCK)
    assert ranges, "at least one shard"
    assert len(ranges) <= parts
    assert ranges[0][0] == 0
    assert ranges[-1][1] == num_samples
    for (start, stop), (next_start, _unused) in zip(ranges, ranges[1:]):
        assert stop == next_start
    for start, stop in ranges:
        assert start < stop
        assert start % MC_SAMPLE_BLOCK == 0


# ----------------------------------------------------------------------
# Monte Carlo delay samples
# ----------------------------------------------------------------------
def test_delay_samples_invariant_across_workers(
    parity_module, process_executor, four_worker_executor
):
    graph, _variation = parity_module
    serial = simulate_graph_delay(graph, DELAY_SAMPLES, seed=3)
    one = simulate_graph_delay(graph, DELAY_SAMPLES, seed=3, workers=1)
    two = simulate_graph_delay(
        graph, DELAY_SAMPLES, seed=3, executor=process_executor
    )
    four = simulate_graph_delay(
        graph, DELAY_SAMPLES, seed=3, executor=four_worker_executor
    )
    assert np.array_equal(serial.samples, one.samples)
    assert np.array_equal(serial.samples, two.samples)
    assert np.array_equal(serial.samples, four.samples)


def test_delay_samples_invariant_across_chunk_splits(parity_module):
    graph, _variation = parity_module
    auto = simulate_graph_delay(graph, DELAY_SAMPLES, seed=5)
    for chunk in (97, MC_SAMPLE_BLOCK, 1000):
        split = simulate_graph_delay(graph, DELAY_SAMPLES, seed=5, chunk_size=chunk)
        assert np.array_equal(auto.samples, split.samples)


# ----------------------------------------------------------------------
# Monte Carlo input/output statistics
# ----------------------------------------------------------------------
def test_io_stats_invariant_across_workers(
    parity_module, process_executor, four_worker_executor
):
    graph, _variation = parity_module
    serial = simulate_io_delays(graph, IO_SAMPLES, seed=9)
    for result in (
        simulate_io_delays(graph, IO_SAMPLES, seed=9, workers=1),
        simulate_io_delays(graph, IO_SAMPLES, seed=9, executor=process_executor),
        simulate_io_delays(
            graph, IO_SAMPLES, seed=9, executor=four_worker_executor
        ),
    ):
        assert np.array_equal(serial.valid, result.valid)
        assert np.array_equal(serial.means, result.means, equal_nan=True)
        assert np.array_equal(serial.stds, result.stds, equal_nan=True)


def test_io_stats_invariant_across_chunk_splits(parity_module):
    graph, _variation = parity_module
    auto = simulate_io_delays(graph, IO_SAMPLES, seed=2)
    for chunk in (130, MC_SAMPLE_BLOCK, 10000):
        split = simulate_io_delays(graph, IO_SAMPLES, seed=2, chunk_size=chunk)
        assert np.array_equal(auto.means, split.means, equal_nan=True)
        assert np.array_equal(auto.stds, split.stds, equal_nan=True)


# ----------------------------------------------------------------------
# Corner STA
# ----------------------------------------------------------------------
def test_corner_sta_parallel_matches_serial(parity_module, process_executor):
    graph, _variation = parity_module
    assert corner_sta_parallel(graph, executor=process_executor) == corner_sta(graph)


def test_corner_sweep_invariant_across_engines(
    parity_module, process_executor, four_worker_executor
):
    graph, _variation = parity_module
    offsets = np.linspace(-3.0, 3.0, 7)
    serial = corner_sweep(offsets, graph=graph)
    assert np.array_equal(serial, corner_sweep(offsets, graph=graph, workers=1))
    assert np.array_equal(
        serial, corner_sweep(offsets, graph=graph, executor=process_executor)
    )
    assert np.array_equal(
        serial, corner_sweep(offsets, graph=graph, executor=four_worker_executor)
    )


# ----------------------------------------------------------------------
# Graceful serial fallback through the consumer APIs
# ----------------------------------------------------------------------
def test_workers_one_is_the_plain_serial_path(parity_module):
    """``workers=1`` degrades to the serial engine with identical results."""
    graph, _variation = parity_module
    plain = simulate_io_delays(graph, IO_SAMPLES, seed=4)
    fallback = simulate_io_delays(graph, IO_SAMPLES, seed=4, workers=1)
    assert np.array_equal(plain.means, fallback.means, equal_nan=True)
    assert np.array_equal(plain.stds, fallback.stds, equal_nan=True)
