"""Publish/attach lifecycle of the shared-memory ``GraphArrays`` snapshots."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TimingGraphError
from repro.parallel import shm as shm_module
from repro.parallel.shm import (
    SharedGraphArrays,
    attach_cached,
    shared_memory_available,
)
from repro.timing.arrays import GraphArrays
from repro.timing.sta import longest_path_from_arrays

pytestmark = pytest.mark.skipif(
    not shared_memory_available(), reason="no working shared memory on this host"
)


@pytest.fixture
def adder_arrays(adder_graph) -> GraphArrays:
    return GraphArrays.from_graph(adder_graph)


def test_round_trip_preserves_every_field(adder_arrays):
    """A worker-side attachment sees exactly the published arrays."""
    with SharedGraphArrays.publish(adder_arrays) as shared:
        attached = SharedGraphArrays.attach(shared.handle)
        try:
            snapshot = attached.arrays
            assert np.array_equal(snapshot.edge_ids, adder_arrays.edge_ids)
            assert np.array_equal(snapshot.edge_source, adder_arrays.edge_source)
            assert np.array_equal(snapshot.edge_sink, adder_arrays.edge_sink)
            assert np.array_equal(snapshot.edge_mean, adder_arrays.edge_mean)
            assert np.array_equal(snapshot.edge_corr, adder_arrays.edge_corr)
            assert np.array_equal(snapshot.edge_randvar, adder_arrays.edge_randvar)
            assert np.array_equal(snapshot.input_rows, adder_arrays.input_rows)
            assert np.array_equal(snapshot.output_rows, adder_arrays.output_rows)
            assert snapshot.num_vertices == adder_arrays.num_vertices
            assert snapshot.num_corr == adder_arrays.num_corr
            assert snapshot.revision == adder_arrays.revision
            assert shared.revision == adder_arrays.revision
            assert snapshot.graph.name == adder_arrays.graph.name
        finally:
            attached.close()


def test_snapshot_views_are_read_only(adder_arrays):
    with SharedGraphArrays.publish(adder_arrays) as shared:
        snapshot = shared.arrays
        with pytest.raises(ValueError):
            snapshot.edge_mean[0] = 1.0
        with pytest.raises(ValueError):
            snapshot.input_rows[...] = 0


def test_levelized_kernels_run_on_a_snapshot(adder_arrays):
    """The deterministic longest-path kernel works straight off the views."""
    reference = longest_path_from_arrays(adder_arrays, 1.5)
    with SharedGraphArrays.publish(adder_arrays) as shared:
        assert longest_path_from_arrays(shared.arrays, 1.5) == reference


def test_snapshot_is_frozen(adder_arrays):
    with SharedGraphArrays.publish(adder_arrays) as shared:
        snapshot = shared.arrays
        with pytest.raises(TimingGraphError):
            snapshot.topo_order
        with pytest.raises(TimingGraphError):
            snapshot.refresh()


def test_owner_close_unlinks_exactly_once(adder_arrays):
    shared = SharedGraphArrays.publish(adder_arrays)
    assert shared.owner
    attached = SharedGraphArrays.attach(shared.handle)
    assert not attached.owner
    shared.close()
    assert shared.closed
    # Repeated closes and unlinks are no-ops, not errors.
    shared.close()
    shared.unlink()
    # The name is gone: late attachments fail loudly.
    with pytest.raises(TimingGraphError):
        SharedGraphArrays.attach(shared.handle)
    # The surviving attachment still unmaps cleanly (close only, no unlink).
    attached.close()


def test_arrays_after_close_raises(adder_arrays):
    shared = SharedGraphArrays.publish(adder_arrays)
    shared.close()
    with pytest.raises(TimingGraphError):
        shared.arrays


def test_nbytes_report_accounts_for_the_whole_segment(adder_arrays):
    with SharedGraphArrays.publish(adder_arrays) as shared:
        report = shared.nbytes_report()
        assert report["total"] == shared.handle.total_bytes
        assert report["padding"] >= 0
        fields = {
            key: value
            for key, value in report.items()
            if key not in ("total", "padding")
        }
        assert sum(fields.values()) + report["padding"] == report["total"]
        assert fields["edge_mean"] == adder_arrays.edge_mean.nbytes
        assert fields["edge_corr"] == adder_arrays.edge_corr.nbytes


def test_attach_cached_reuses_the_mapping(adder_arrays):
    shared = SharedGraphArrays.publish(adder_arrays)
    try:
        first = attach_cached(shared.handle)
        second = attach_cached(shared.handle)
        assert first is second
        # The cached attachment's lazily built schedules are shared too.
        assert first.arrays is second.arrays
    finally:
        cached = shm_module._ATTACH_CACHE.pop(shared.handle.shm_name, None)
        if cached is not None:
            cached.close()
        shared.close()
