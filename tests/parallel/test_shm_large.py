"""Segment layout and round-trip behaviour at million-edge snapshot sizes.

The layout tests run pure offset arithmetic on broadcast (zero-allocation)
arrays, so they exercise million-edge and beyond-int32 geometries without
touching real memory; the round-trip test publishes a genuinely large
generated design through an actual segment.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.netlist.generators import layered_random_circuit
from repro.parallel.shm import (
    _ALIGN,
    _FIELDS,
    SharedGraphArrays,
    _layout,
    shared_memory_available,
)
from repro.timing.arrays import GraphArrays
from repro.timing.builder import synthetic_timing_graph


def _phantom_fields(num_edges, num_corr, num_io):
    """A ``_layout`` input of the given geometry without allocating it."""
    def phantom(shape, dtype):
        return np.broadcast_to(np.zeros(1, dtype=dtype), shape)

    return {
        "edge_ids": phantom((num_edges,), np.int64),
        "edge_source": phantom((num_edges,), np.int64),
        "edge_sink": phantom((num_edges,), np.int64),
        "edge_mean": phantom((num_edges,), np.float64),
        "edge_corr": phantom((num_edges, num_corr), np.float64),
        "edge_randvar": phantom((num_edges,), np.float64),
        "input_rows": phantom((num_io,), np.int64),
        "output_rows": phantom((num_io,), np.int64),
    }


class TestLayoutGeometry:
    def test_million_edge_layout_is_aligned_and_disjoint(self):
        arrays = _phantom_fields(10**6, 12, 500)
        fields, total = _layout(arrays)
        assert [name for name, _, _, _ in fields] == list(_FIELDS)
        previous_end = 0
        for name, offset, shape, dtype_str in fields:
            assert isinstance(offset, int)
            assert offset % _ALIGN == 0
            assert offset >= previous_end
            previous_end = offset + arrays[name].nbytes
        assert total >= previous_end
        assert total >= sum(arrays[name].nbytes for name in _FIELDS)

    def test_offsets_stay_exact_past_int32(self):
        # ~50M edges x 12 correlation columns: the edge_corr field alone is
        # 4.8 GB, so every later offset and the total exceed 2**31.  The
        # arithmetic must stay in exact Python ints — an int32 intermediate
        # would wrap negative.
        arrays = _phantom_fields(50 * 10**6, 12, 10**4)
        fields, total = _layout(arrays)
        offsets = {name: offset for name, offset, _, _ in fields}
        assert offsets["edge_randvar"] > 2**31
        assert total > 2**31
        for _, offset, _, _ in fields:
            assert isinstance(offset, int)
            assert offset >= 0
        assert isinstance(total, int)

    def test_layout_matches_nbytes_sum_with_padding_only(self):
        arrays = _phantom_fields(10**6, 8, 64)
        _, total = _layout(arrays)
        payload = sum(arrays[name].nbytes for name in _FIELDS)
        # Padding is bounded by one alignment quantum per field.
        assert payload <= total <= payload + len(_FIELDS) * _ALIGN


@pytest.mark.skipif(
    not shared_memory_available(), reason="no working shared memory on this host"
)
def test_large_snapshot_round_trip():
    netlist = layered_random_circuit("shmbig", 10, 10, 40_000, 100_000, seed=5)
    graph = synthetic_timing_graph(netlist, seed=2)
    arrays = GraphArrays.from_graph(graph)
    with SharedGraphArrays.publish(arrays) as shared:
        handle = pickle.loads(pickle.dumps(shared.handle))
        assert handle.total_bytes == shared.handle.total_bytes
        attached = SharedGraphArrays.attach(handle)
        try:
            snapshot = attached.arrays
            assert np.array_equal(snapshot.edge_corr, arrays.edge_corr)
            assert np.array_equal(snapshot.edge_mean, arrays.edge_mean)
            assert np.array_equal(snapshot.edge_source, arrays.edge_source)
            assert snapshot.num_vertices == arrays.num_vertices
            report = shared.nbytes_report()
            assert report["total"] == handle.total_bytes
        finally:
            attached.close()
