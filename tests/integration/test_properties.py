"""Property-based tests of system-level invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.canonical import CanonicalForm
from repro.core.ops import statistical_max, statistical_max_many
from repro.model.reduction import reduce_graph
from repro.montecarlo.flat import simulate_graph_delay
from repro.netlist.generators import layered_random_circuit
from repro.timing.allpairs import AllPairsTiming
from repro.timing.builder import build_timing_graph
from repro.timing.graph import TimingGraph
from repro.timing.propagation import circuit_delay
from repro.timing.sta import deterministic_longest_path


@st.composite
def random_timing_graphs(draw):
    """Small random DAG timing graphs with statistical edge delays."""
    num_inputs = draw(st.integers(min_value=1, max_value=3))
    num_outputs = draw(st.integers(min_value=1, max_value=3))
    num_internal = draw(st.integers(min_value=1, max_value=6))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)

    graph = TimingGraph("prop", 2)
    inputs = ["i%d" % index for index in range(num_inputs)]
    outputs = ["o%d" % index for index in range(num_outputs)]
    internal = ["v%d" % index for index in range(num_internal)]
    for name in inputs:
        graph.mark_input(name)
    for name in outputs:
        graph.mark_output(name)

    ordered = inputs + internal + outputs
    for position, vertex in enumerate(ordered[num_inputs:], start=num_inputs):
        fanin = rng.integers(1, min(3, position) + 1)
        sources = rng.choice(position, size=fanin, replace=False)
        for source in sources:
            nominal = float(rng.uniform(5.0, 50.0))
            delay = CanonicalForm(
                nominal,
                0.05 * nominal,
                rng.uniform(0.0, 0.05, 2) * nominal,
                0.03 * nominal,
            )
            graph.add_edge(ordered[int(source)], vertex, delay)
    return graph


class TestPropagationInvariants:
    @given(random_timing_graphs())
    @settings(max_examples=30, deadline=None)
    def test_statistical_mean_dominates_deterministic_longest_path(self, graph):
        try:
            analytical = circuit_delay(graph)
        except Exception:
            return  # outputs unreachable in this sample: nothing to check
        deterministic = deterministic_longest_path(graph)
        assert analytical.mean >= deterministic - 1e-6

    @given(random_timing_graphs())
    @settings(max_examples=20, deadline=None)
    def test_reduction_preserves_reachable_io_delays(self, graph):
        analysis_before = AllPairsTiming.analyze(graph)
        reduced = reduce_graph(graph.copy())
        analysis_after = AllPairsTiming.analyze(reduced)
        before = analysis_before.matrix_means()
        after = analysis_after.matrix_means()
        mask = analysis_before.matrix_valid
        assert np.array_equal(mask, analysis_after.matrix_valid)
        assert np.allclose(before[mask], after[mask], rtol=0.05, atol=1e-6)

    @given(st.integers(min_value=0, max_value=5000))
    @settings(max_examples=10, deadline=None)
    def test_generated_circuit_delay_matches_monte_carlo(self, seed):
        netlist = layered_random_circuit("prop", 6, 3, 40, 90, seed=seed)
        graph = build_timing_graph(netlist)
        analytical = circuit_delay(graph)
        simulated = simulate_graph_delay(graph, num_samples=1500, seed=seed)
        assert analytical.mean == pytest.approx(simulated.mean, rel=0.05)
        assert analytical.std == pytest.approx(simulated.std, rel=0.35)


class TestMaxInvariants:
    @given(
        st.lists(
            st.floats(min_value=1.0, max_value=100.0, allow_nan=False),
            min_size=2,
            max_size=6,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_max_many_dominates_every_operand(self, nominals):
        forms = [CanonicalForm(value, 0.1 * value, None, 0.05 * value) for value in nominals]
        result = statistical_max_many(forms)
        assert result.nominal >= max(nominals) - 1e-9

    @given(
        st.floats(min_value=1.0, max_value=50.0),
        st.floats(min_value=1.0, max_value=50.0),
        st.floats(min_value=1.0, max_value=50.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_max_is_associative_within_tolerance(self, a, b, c):
        forms = [CanonicalForm(value, 0.08 * value, None, 0.04 * value) for value in (a, b, c)]
        left = statistical_max(statistical_max(forms[0], forms[1]), forms[2])
        right = statistical_max(forms[0], statistical_max(forms[1], forms[2]))
        assert left.nominal == pytest.approx(right.nominal, rel=0.02)
        assert left.std == pytest.approx(right.std, rel=0.1, abs=0.5)
