"""End-to-end integration tests crossing every layer of the library."""

import numpy as np
import pytest

from repro.experiments.config import ExperimentConfig
from repro.hier.analysis import CorrelationMode, analyze_hierarchical_design
from repro.hier.design import HierarchicalDesign, ModuleInstance
from repro.liberty.library import standard_library
from repro.model.extraction import extract_timing_model
from repro.montecarlo.flat import simulate_graph_delay, simulate_io_delays
from repro.montecarlo.hierarchical import monte_carlo_hierarchical
from repro.netlist.bench import parse_bench, write_bench
from repro.netlist.generators import carry_select_adder, ripple_carry_adder
from repro.placement.placer import place_netlist
from repro.timing.builder import build_timing_graph, default_variation_for
from repro.timing.propagation import circuit_delay
from repro.timing.sta import corner_sta
from repro.variation.grid import Die


class TestModuleFlow:
    """Netlist -> placement -> characterization -> model -> validation."""

    def test_bench_roundtrip_to_model(self, library):
        original = carry_select_adder(8)
        netlist = parse_bench(write_bench(original), original.name)
        placement = place_netlist(netlist, library)
        variation = default_variation_for(netlist, placement)
        graph = build_timing_graph(netlist, library, placement, variation)
        model = extract_timing_model(graph, variation, threshold=0.05)

        assert model.stats.model_edges < graph.num_edges
        reference = simulate_io_delays(graph, num_samples=1500, seed=4)
        means = model.delay_matrix_means()
        mask = np.isfinite(means) & np.isfinite(reference.means)
        errors = np.abs(means[mask] - reference.means[mask]) / reference.means[mask]
        assert errors.max() < 0.08

    def test_ssta_less_pessimistic_than_corner(self, library):
        netlist = ripple_carry_adder(8)
        graph = build_timing_graph(netlist, library)
        ssta = circuit_delay(graph)
        corners = corner_sta(graph, sigma_corner=3.0)
        assert ssta.mean + 3.0 * ssta.std < corners.worst
        assert corners.best < ssta.mean


class TestHierarchicalFlow:
    """Two different modules assembled into one design and validated."""

    def test_mixed_module_design_against_monte_carlo(self, library):
        config = ExperimentConfig()
        # Both modules are characterized with the same default grid size, as
        # the paper's design-level grid construction assumes (Section V).
        from repro.variation.grid import GridPartition
        from repro.variation.model import VariationModel

        grid_size = 4.0
        modules = {}
        for name, netlist in (
            ("adder", ripple_carry_adder(8)),
            ("csel", carry_select_adder(8)),
        ):
            placement = place_netlist(netlist, library)
            partition = GridPartition.regular(placement.die, grid_size)
            variation = VariationModel(partition, config.correlation(),
                                       config.sigma_fraction(), config.random_variance_share)
            graph = build_timing_graph(netlist, library, placement, variation, name=name)
            model = extract_timing_model(graph, variation, config.criticality_threshold)
            modules[name] = (netlist, placement, model)

        adder_die = modules["adder"][2].die
        csel_die = modules["csel"][2].die
        design = HierarchicalDesign(
            "mixed", Die(adder_die.width + csel_die.width, max(adder_die.height, csel_die.height))
        )
        design.add_instance(
            ModuleInstance("front", modules["adder"][2], 0.0, 0.0,
                           netlist=modules["adder"][0], placement=modules["adder"][1])
        )
        design.add_instance(
            ModuleInstance("back", modules["csel"][2], adder_die.width, 0.0,
                           netlist=modules["csel"][0], placement=modules["csel"][1])
        )

        front_model = modules["adder"][2]
        back_model = modules["csel"][2]
        for port in front_model.inputs:
            design.add_primary_input("PI_%s" % port)
            design.connect("PI_%s" % port, "front/%s" % port)
        # Front outputs drive the first back inputs; remaining back inputs
        # come straight from primary inputs.
        back_inputs = list(back_model.inputs)
        for output, sink in zip(front_model.outputs, back_inputs):
            design.connect("front/%s" % output, "back/%s" % sink)
        for sink in back_inputs[len(front_model.outputs):]:
            design.add_primary_input("PI_back_%s" % sink)
            design.connect("PI_back_%s" % sink, "back/%s" % sink)
        for port in back_model.outputs:
            design.add_primary_output("PO_%s" % port)
            design.connect("back/%s" % port, "PO_%s" % port)
        design.validate()

        proposed = analyze_hierarchical_design(design, CorrelationMode.REPLACEMENT)
        reference = monte_carlo_hierarchical(design, num_samples=1200, seed=6, chunk_size=600)
        assert proposed.mean == pytest.approx(reference.mean, rel=0.06)
        assert proposed.std == pytest.approx(reference.std, rel=0.35)

    def test_replacement_beats_global_only_for_abutted_copies(self, library):
        netlist = ripple_carry_adder(12)
        placement = place_netlist(netlist, library)
        variation = default_variation_for(netlist, placement)
        graph = build_timing_graph(netlist, library, placement, variation, name="rca12")
        model = extract_timing_model(graph, variation, 0.05)

        die = model.die
        design = HierarchicalDesign("pair", Die(2 * die.width, die.height))
        for index, name in enumerate(("left", "right")):
            design.add_instance(
                ModuleInstance(name, model, index * die.width, 0.0,
                               netlist=netlist, placement=placement)
            )
        for name in ("left", "right"):
            for port in model.inputs:
                design.add_primary_input("PI_%s_%s" % (name, port))
                design.connect("PI_%s_%s" % (name, port), "%s/%s" % (name, port))
            for port in model.outputs:
                design.add_primary_output("PO_%s_%s" % (name, port))
                design.connect("%s/%s" % (name, port), "PO_%s_%s" % (name, port))
        design.validate()

        proposed = analyze_hierarchical_design(design, CorrelationMode.REPLACEMENT)
        global_only = analyze_hierarchical_design(design, CorrelationMode.GLOBAL_ONLY)
        reference = monte_carlo_hierarchical(design, num_samples=1500, seed=7, chunk_size=750)

        assert abs(proposed.std - reference.std) <= abs(global_only.std - reference.std)
        assert proposed.mean == pytest.approx(reference.mean, rel=0.05)
