"""Tests of the Table I experiment driver."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.table1 import (
    TABLE1_CIRCUITS,
    TABLE1_DEFAULT_SUBSET,
    characterize_circuit,
    run_table1,
)
from repro.netlist.iscas85 import ISCAS85_SPECS


@pytest.fixture(scope="module")
def small_result():
    config = ExperimentConfig(monte_carlo_samples=1200, monte_carlo_chunk=600)
    return run_table1(circuits=["c432", "c499"], config=config)


class TestCharacterization:
    def test_characterized_graph_matches_spec(self):
        config = ExperimentConfig()
        circuit = characterize_circuit("c432", config)
        spec = ISCAS85_SPECS["c432"]
        assert circuit.graph.num_edges == spec.timing_graph_edges
        assert circuit.graph.num_vertices == spec.timing_graph_vertices
        assert circuit.variation.num_grids >= 1


class TestRunTable1:
    def test_circuit_lists(self):
        assert len(TABLE1_CIRCUITS) == 10
        assert set(TABLE1_DEFAULT_SUBSET) <= set(TABLE1_CIRCUITS)

    def test_rows_reproduce_table_columns(self, small_result):
        assert [row.circuit for row in small_result.rows] == ["c432", "c499"]
        for row in small_result.rows:
            spec = ISCAS85_SPECS[row.circuit]
            assert row.original_edges == spec.timing_graph_edges
            assert row.original_vertices == spec.timing_graph_vertices
            assert row.model_edges < row.original_edges
            assert row.model_vertices < row.original_vertices
            assert 0.0 < row.edge_ratio < 1.0
            assert 0.0 < row.vertex_ratio < 1.0
            assert row.extraction_seconds > 0.0
            assert row.reference == "monte-carlo"

    def test_compression_is_substantial(self, small_result):
        """Headline claim: models are far smaller than the original graphs."""
        assert small_result.average_edge_ratio < 0.5
        assert small_result.average_vertex_ratio < 0.6

    def test_accuracy_within_a_few_percent(self, small_result):
        """Shape of Table I: mean errors ~1 %, sigma errors a few percent."""
        assert small_result.average_mean_error < 0.05
        assert small_result.average_std_error < 0.12

    def test_render_contains_all_rows(self, small_result):
        text = small_result.render()
        assert "c432" in text and "c499" in text and "average" in text
        assert "pe" in text and "verr" in text

    def test_accuracy_validation_can_be_skipped(self):
        config = ExperimentConfig(monte_carlo_samples=100)
        result = run_table1(circuits=["c432"], config=config, validate_accuracy=False)
        assert result.rows[0].reference == "skipped"
        assert result.rows[0].mean_error == 0.0

    def test_ssta_reference_used_above_gate_limit(self):
        config = ExperimentConfig(monte_carlo_samples=100, monte_carlo_gate_limit=10)
        result = run_table1(circuits=["c432"], config=config)
        assert result.rows[0].reference == "ssta"
