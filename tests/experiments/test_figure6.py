"""Tests of the Fig. 6 criticality-histogram driver."""

import numpy as np
import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.figure6 import run_figure6


@pytest.fixture(scope="module")
def result():
    return run_figure6("c880", bins=20, config=ExperimentConfig())


class TestFigure6:
    def test_histogram_covers_all_edges(self, result):
        assert result.counts.sum() == result.num_edges
        assert result.bin_edges[0] == 0.0
        assert result.bin_edges[-1] == 1.0
        assert result.criticalities.min() >= 0.0
        assert result.criticalities.max() <= 1.0

    def test_distribution_is_bimodal_towards_zero(self, result):
        """The paper's observation: criticalities concentrate near 0 (and 1),
        which is what makes threshold-based removal effective.  The random
        surrogate circuits show the same tendency, if less extremely than the
        real c7552 (they have more balanced reconvergent paths)."""
        assert result.fraction_below_threshold > 0.3
        assert result.fraction_near_one > 0.02
        # The lowest bin alone holds more mass than any interior bin.
        assert result.counts[0] == result.counts.max()

    def test_render(self, result):
        text = result.render(width=30)
        assert "Fig. 6" in text
        assert "below threshold" in text
        assert text.count("\n") >= 20

    def test_bins_parameter(self):
        result = run_figure6("c432", bins=10, config=ExperimentConfig())
        assert len(result.counts) == 10

    def test_reuses_precomputed_criticalities(self, result):
        from repro.model.criticality import CriticalityResult

        recycled = run_figure6(
            "c880",
            bins=20,
            config=ExperimentConfig(),
            criticalities=CriticalityResult(
                {index: value for index, value in enumerate(result.criticalities)}
            ),
        )
        assert np.allclose(recycled.counts, result.counts)
