"""Tests of the Fig. 7 hierarchical-design driver."""

import os

import numpy as np
import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.figure7 import (
    build_multiplier_design,
    build_multiplier_module,
    run_figure7,
)


@pytest.fixture(scope="module")
def figure7_result():
    # 8000 samples keep the analysis-vs-Monte-Carlo speedup assertion a
    # comfortable margin now that the levelized Monte Carlo engine cut the
    # MC wall clock ~10x (2000 samples left the ratio only ~2x above the
    # 5x gate); the run still finishes in well under a second.
    config = ExperimentConfig(monte_carlo_samples=8000, monte_carlo_chunk=500)
    return run_figure7(bits=4, config=config)


class TestDesignConstruction:
    def test_four_instances_cross_connected(self):
        config = ExperimentConfig()
        module = build_multiplier_module(bits=4, config=config)
        design = build_multiplier_design(module)
        assert len(design.instances) == 4
        assert len(design.primary_inputs) == 2 * len(module.model.inputs)
        assert len(design.primary_outputs) == 2 * len(module.model.outputs)
        # All first-column outputs drive second-column inputs.
        cross = [
            connection
            for connection in design.connections
            if connection.source.startswith(("m0_0/", "m1_0/"))
            and connection.sink.startswith(("m0_1/", "m1_1/"))
        ]
        assert len(cross) == 2 * len(module.model.outputs)
        design.validate()

    def test_modules_are_abutted(self):
        config = ExperimentConfig()
        module = build_multiplier_module(bits=4, config=config)
        design = build_multiplier_design(module)
        die = module.model.die
        origins = {
            (instance.origin_x, instance.origin_y) for instance in design.instances
        }
        assert origins == {
            (0.0, 0.0),
            (0.0, die.height),
            (die.width, 0.0),
            (die.width, die.height),
        }


class TestFigure7Result:
    def test_curves_are_cdfs(self, figure7_result):
        assert set(figure7_result.curves) == {"Monte Carlo", "proposed", "global only"}
        for curve in figure7_result.curves.values():
            assert curve.shape == figure7_result.grid.shape
            assert np.all(np.diff(curve) >= -1e-9)
            assert curve[0] < 0.1 and curve[-1] > 0.9

    def test_proposed_tracks_monte_carlo(self, figure7_result):
        assert figure7_result.proposed_mean_error < 0.08
        assert figure7_result.proposed_std_error < 0.25
        assert figure7_result.proposed_cdf_gap < 0.15

    def test_local_correlation_matters(self, figure7_result):
        """The global-only baseline underestimates the delay spread and is a
        worse fit to the Monte Carlo CDF — the paper's central message."""
        assert figure7_result.global_only.std < figure7_result.proposed.std
        assert figure7_result.global_only_cdf_gap > figure7_result.proposed_cdf_gap

    def test_hierarchical_analysis_is_faster_than_monte_carlo(self, figure7_result):
        # ~130x on an idle machine.  REPRO_FIG7_SPEEDUP_MIN relaxes this
        # wall-clock assertion on loaded shared runners (the CI tier-1 job
        # sets it to 2.0) without weakening the local 5x check.
        threshold = float(os.environ.get("REPRO_FIG7_SPEEDUP_MIN", "5.0"))
        assert figure7_result.speedup > threshold

    def test_render(self, figure7_result):
        text = figure7_result.render()
        assert "Fig. 7" in text
        assert "speed-up" in text
        assert "Monte Carlo" in text and "proposed" in text and "global only" in text
