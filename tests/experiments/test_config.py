"""Tests of the shared experiment configuration."""

import pytest

from repro.experiments.config import DEFAULT_CONFIG, FAST_CONFIG, ExperimentConfig


class TestExperimentConfig:
    def test_defaults_match_paper(self):
        config = DEFAULT_CONFIG
        assert config.criticality_threshold == 0.05
        assert config.max_cells_per_grid == 100
        assert config.neighbor_correlation == 0.92
        assert config.floor_correlation == 0.42
        assert config.correlation_cutoff == 15.0
        assert config.monte_carlo_samples == 10000

    def test_correlation_profile(self):
        profile = DEFAULT_CONFIG.correlation()
        assert profile.total_correlation(1.0) == pytest.approx(0.92)
        assert profile.total_correlation(50.0) == pytest.approx(0.42)

    def test_parameters_and_sigma(self):
        parameters = DEFAULT_CONFIG.parameters()
        assert parameters["Leff"].sigma_fraction == pytest.approx(0.157)
        assert DEFAULT_CONFIG.sigma_fraction() == pytest.approx(
            parameters.combined_sigma_fraction()
        )

    def test_with_overrides(self):
        config = DEFAULT_CONFIG.with_overrides(criticality_threshold=0.1, seed=1)
        assert config.criticality_threshold == 0.1
        assert config.seed == 1
        assert DEFAULT_CONFIG.criticality_threshold == 0.05

    def test_fast_config_differs_only_in_sampling(self):
        assert FAST_CONFIG.monte_carlo_samples < DEFAULT_CONFIG.monte_carlo_samples
        assert FAST_CONFIG.criticality_threshold == DEFAULT_CONFIG.criticality_threshold

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_CONFIG.seed = 1  # type: ignore[misc]
