"""Tests of the ablation sweeps."""

import pytest

from repro.experiments.ablation import run_correlation_sweep, run_threshold_sweep
from repro.experiments.config import ExperimentConfig


@pytest.fixture(scope="module")
def threshold_sweep():
    return run_threshold_sweep(
        "c432", thresholds=(0.0, 0.05, 0.3), config=ExperimentConfig()
    )


class TestThresholdSweep:
    def test_model_size_decreases_with_threshold(self, threshold_sweep):
        edges = [point.model_edges for point in threshold_sweep.points]
        assert edges[0] >= edges[1] >= edges[2]

    def test_error_grows_with_threshold(self, threshold_sweep):
        first, _middle, last = threshold_sweep.points
        assert last.mean_error >= first.mean_error - 1e-9

    def test_zero_threshold_is_accurate(self, threshold_sweep):
        assert threshold_sweep.points[0].mean_error < 0.02

    def test_render(self, threshold_sweep):
        text = threshold_sweep.render()
        assert "delta" in text and "c432" in text


class TestCorrelationSweep:
    def test_sigma_grows_with_correlation(self):
        config = ExperimentConfig(monte_carlo_samples=200, monte_carlo_chunk=200)
        sweep = run_correlation_sweep(
            bits=4, neighbor_correlations=(0.5, 0.92), config=config
        )
        assert len(sweep.points) == 2
        assert sweep.points[0].proposed_std <= sweep.points[1].proposed_std * 1.05

    def test_global_only_underestimates_sigma(self):
        config = ExperimentConfig(monte_carlo_samples=200, monte_carlo_chunk=200)
        sweep = run_correlation_sweep(
            bits=4, neighbor_correlations=(0.92,), config=config
        )
        point = sweep.points[0]
        assert point.global_only_std < point.proposed_std
        assert point.std_gap > 0.0
        assert "sigma" in sweep.render()
