"""Tests of the per-arc delay models."""

import pytest

from repro.liberty.delay_model import DelayArc, LinearDelayModel


class TestLinearDelayModel:
    def test_delay_is_linear_in_fanout(self):
        model = LinearDelayModel(intrinsic=10.0, load_slope=2.0)
        assert model.delay(1) == 12.0
        assert model.delay(4) == 18.0
        assert model.delay(0) == 10.0

    def test_negative_parameters_rejected(self):
        with pytest.raises(ValueError):
            LinearDelayModel(-1.0, 2.0)
        with pytest.raises(ValueError):
            LinearDelayModel(1.0, -2.0)

    def test_negative_fanout_rejected(self):
        with pytest.raises(ValueError):
            LinearDelayModel(1.0, 2.0).delay(-1)


class TestDelayArc:
    def test_nominal_delay_delegates_to_model(self):
        arc = DelayArc("A", "Y", LinearDelayModel(5.0, 1.0), sigma_scale=1.2)
        assert arc.nominal_delay(3) == 8.0
        assert arc.sigma_scale == 1.2

    def test_sigma_scale_must_be_positive(self):
        with pytest.raises(ValueError):
            DelayArc("A", "Y", LinearDelayModel(5.0, 1.0), sigma_scale=0.0)
