"""Tests of cell-type definitions."""

import pytest

from repro.errors import LibraryError
from repro.liberty.cells import CellType, PinDirection
from repro.liberty.delay_model import DelayArc, LinearDelayModel


def _arc(pin: str, intrinsic: float = 10.0) -> DelayArc:
    return DelayArc(pin, "Y", LinearDelayModel(intrinsic, 2.0))


@pytest.fixture
def nand2() -> CellType:
    return CellType("NAND2_X1", "nand", ["A", "B"], "Y", [_arc("A"), _arc("B", 12.0)])


class TestCellType:
    def test_basic_properties(self, nand2):
        assert nand2.function == "NAND"
        assert nand2.num_inputs == 2
        assert nand2.input_pins == ("A", "B")
        assert nand2.output_pin == "Y"

    def test_pins_enumeration(self, nand2):
        pins = nand2.pins
        assert [pin.name for pin in pins] == ["A", "B", "Y"]
        assert pins[0].direction is PinDirection.INPUT
        assert pins[-1].direction is PinDirection.OUTPUT

    def test_arc_lookup_and_delays(self, nand2):
        assert nand2.nominal_delay("A", 1) == 12.0
        assert nand2.nominal_delay("B", 1) == 14.0
        assert nand2.max_nominal_delay(1) == 14.0

    def test_unknown_pin_rejected(self, nand2):
        with pytest.raises(LibraryError):
            nand2.arc("C")

    def test_missing_arc_rejected(self):
        with pytest.raises(LibraryError):
            CellType("BAD", "AND", ["A", "B"], "Y", [_arc("A")])

    def test_arc_for_unknown_pin_rejected(self):
        with pytest.raises(LibraryError):
            CellType("BAD", "AND", ["A"], "Y", [_arc("A"), _arc("C")])

    def test_arc_to_wrong_output_rejected(self):
        bad_arc = DelayArc("A", "Z", LinearDelayModel(1.0, 1.0))
        with pytest.raises(LibraryError):
            CellType("BAD", "AND", ["A"], "Y", [bad_arc])

    def test_duplicate_arc_rejected(self):
        with pytest.raises(LibraryError):
            CellType("BAD", "AND", ["A"], "Y", [_arc("A"), _arc("A")])

    def test_no_inputs_rejected(self):
        with pytest.raises(LibraryError):
            CellType("BAD", "AND", [], "Y", [])

    def test_non_positive_area_rejected(self):
        with pytest.raises(LibraryError):
            CellType("BAD", "AND", ["A"], "Y", [_arc("A")], area=0.0)
