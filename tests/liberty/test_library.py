"""Tests of the library container and the synthetic standard library."""

import pytest

from repro.errors import LibraryError
from repro.liberty.library import Library, standard_library


class TestStandardLibrary:
    def test_contains_basic_cells(self):
        library = standard_library()
        for name in ("INV_X1", "NAND2_X1", "NOR2_X1", "XOR2_X1", "BUF_X1"):
            assert name in library

    def test_function_lookup_covers_generator_needs(self):
        library = standard_library()
        # Every (function, width) the netlist generators may emit must exist.
        for function, widths in {
            "INV": (1,),
            "BUF": (1,),
            "NAND": (2, 3, 4, 5),
            "NOR": (2, 3, 4),
            "AND": (2, 3, 4, 5),
            "OR": (2, 3, 4, 5),
            "XOR": (2, 3),
            "XNOR": (2, 3),
        }.items():
            for width in widths:
                assert library.supports_function(function, width), (function, width)

    def test_not_alias_resolves_to_inverter(self):
        library = standard_library()
        assert library.cell_for_function("NOT", 1).name == "INV_X1"

    def test_unknown_function_raises(self):
        library = standard_library()
        with pytest.raises(LibraryError):
            library.cell_for_function("MAJ", 3)
        assert not library.supports_function("MAJ", 3)

    def test_unknown_cell_raises(self):
        library = standard_library()
        with pytest.raises(LibraryError):
            library.cell("FOO_X1")

    def test_delays_are_positive_and_ordered(self):
        library = standard_library()
        inv = library.cell("INV_X1")
        xor2 = library.cell("XOR2_X1")
        assert 0.0 < inv.max_nominal_delay(1) < xor2.max_nominal_delay(1)

    def test_drive_scale_scales_delays(self):
        base = standard_library()
        scaled = standard_library(name="slow", drive_scale=2.0)
        assert scaled.cell("NAND2_X1").nominal_delay("A", 1) == pytest.approx(
            2.0 * base.cell("NAND2_X1").nominal_delay("A", 1)
        )

    def test_iteration_and_len(self):
        library = standard_library()
        assert len(library) == len(list(library)) == len(library.cell_names)


class TestLibraryContainer:
    def test_duplicate_cell_rejected(self):
        library = standard_library()
        with pytest.raises(LibraryError):
            library.add(library.cell("INV_X1"))

    def test_first_registered_cell_wins_function_lookup(self):
        base = standard_library()
        inv = base.cell("INV_X1")
        nand = base.cell("NAND2_X1")
        library = Library("custom", [inv, nand])
        assert library.cell_for_function("INV", 1) is inv
