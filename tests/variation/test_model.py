"""Tests of the combined variation model (grid + correlation + PCA)."""

import numpy as np
import pytest

from repro.core.correlation import correlation_matrix
from repro.variation.grid import Die, GridPartition
from repro.variation.model import VariationModel
from repro.variation.parameters import nassif_parameters
from repro.variation.spatial import SpatialCorrelation


@pytest.fixture
def model() -> VariationModel:
    partition = GridPartition.regular(Die(20.0, 20.0), 5.0)
    return VariationModel(partition, SpatialCorrelation(), sigma_fraction=0.1,
                          random_variance_share=0.2)


class TestConstruction:
    def test_invalid_arguments(self):
        partition = GridPartition.regular(Die(10.0, 10.0), 5.0)
        with pytest.raises(ValueError):
            VariationModel(partition, sigma_fraction=-0.1)
        with pytest.raises(ValueError):
            VariationModel(partition, random_variance_share=1.5)

    def test_from_parameters_uses_budget(self):
        partition = GridPartition.regular(Die(10.0, 10.0), 5.0)
        parameters = nassif_parameters()
        model = VariationModel.from_parameters(partition, parameters=parameters)
        assert model.sigma_fraction == pytest.approx(parameters.combined_sigma_fraction())
        assert 0.0 < model.random_variance_share < 1.0

    def test_for_die_builds_partition(self):
        model = VariationModel.for_die(Die(30.0, 30.0), num_cells=500, max_cells_per_grid=100)
        assert model.num_grids >= 5


class TestVarianceSplit:
    def test_split_sums_to_total(self, model):
        nominal = 100.0
        global_var, local_var, random_var = model.variance_split(nominal)
        total = (nominal * model.sigma_fraction) ** 2
        assert global_var + local_var + random_var == pytest.approx(total)

    def test_random_share_respected(self, model):
        global_var, local_var, random_var = model.variance_split(50.0)
        total = global_var + local_var + random_var
        assert random_var / total == pytest.approx(model.random_variance_share)

    def test_global_share_follows_correlation_floor(self, model):
        global_var, local_var, _unused = model.variance_split(50.0)
        correlated = global_var + local_var
        assert global_var / correlated == pytest.approx(
            model.correlation.global_variance_share
        )


class TestDelayForms:
    def test_delay_form_moments(self, model):
        form = model.delay_form(100.0, 2.0, 2.0)
        assert form.nominal == 100.0
        assert form.std == pytest.approx(10.0)
        assert form.num_locals == model.num_locals

    def test_sigma_scale(self, model):
        base = model.delay_form(100.0, 2.0, 2.0)
        scaled = model.delay_form(100.0, 2.0, 2.0, sigma_scale=1.5)
        assert scaled.std == pytest.approx(1.5 * base.std)
        assert scaled.nominal == base.nominal

    def test_same_grid_cells_fully_locally_correlated(self, model):
        a = model.delay_form(100.0, 1.0, 1.0)
        b = model.delay_form(80.0, 2.0, 2.0)
        # Same grid: correlation = global share + local share of variance.
        expected = 1.0 - model.random_variance_share
        assert a.correlation(b) == pytest.approx(expected, abs=1e-6)

    def test_distant_cells_less_correlated_than_neighbors(self, model):
        a = model.delay_form(100.0, 1.0, 1.0)
        near = model.delay_form(100.0, 6.0, 1.0)
        far = model.delay_form(100.0, 19.0, 19.0)
        assert a.correlation(near) > a.correlation(far)

    def test_delay_form_for_grid_bounds(self, model):
        with pytest.raises(IndexError):
            model.delay_form_for_grid(10.0, model.num_grids)

    def test_constant_form(self, model):
        form = model.constant_form(5.0)
        assert form.std == 0.0
        assert form.num_locals == model.num_locals

    def test_zero_nominal_gives_deterministic_form(self, model):
        form = model.delay_form(0.0, 1.0, 1.0)
        assert form.std == 0.0


class TestSampling:
    def test_sample_shapes(self, model):
        rng = np.random.default_rng(0)
        locals_ = model.sample_local_components(100, rng)
        assert locals_.shape == (model.num_locals, 100)
        assert model.sample_global(100, rng).shape == (100,)

    def test_grid_correlation_reproduced_by_delay_forms(self, model):
        # Delay forms in neighbouring grids should reproduce the profile's
        # total correlation (within the correlated variance share).
        centers = model.partition.centers()
        forms = [model.delay_form(100.0, x, y) for x, y in centers[:6]]
        matrix = correlation_matrix(forms)
        profile = model.correlation
        share = 1.0 - model.random_variance_share
        distances = model.partition.distance_matrix()[:6, :6]
        for i in range(6):
            for j in range(i + 1, 6):
                expected = share * profile.total_correlation(distances[i, j])
                assert matrix[i, j] == pytest.approx(expected, abs=0.05)
