"""Tests of the distance-based spatial correlation model."""

import numpy as np
import pytest

from repro.variation.grid import Die, GridPartition
from repro.variation.spatial import (
    SpatialCorrelation,
    exponential_correlation,
    nearest_positive_semidefinite,
)


class TestProfile:
    def test_paper_profile_endpoints(self):
        profile = SpatialCorrelation()
        assert profile.total_correlation(0.0) == 1.0
        assert profile.total_correlation(1.0) == pytest.approx(0.92)
        assert profile.total_correlation(15.0) == pytest.approx(0.42, abs=0.01)
        assert profile.total_correlation(100.0) == pytest.approx(0.42)

    def test_monotonically_decreasing(self):
        profile = SpatialCorrelation()
        distances = np.linspace(0.0, 20.0, 50)
        values = [profile.total_correlation(d) for d in distances]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_local_correlation_normalization(self):
        profile = SpatialCorrelation()
        assert profile.local_correlation(0.0) == pytest.approx(1.0)
        assert profile.local_correlation(1.0) == pytest.approx((0.92 - 0.42) / 0.58)
        assert profile.local_correlation(50.0) == pytest.approx(0.0, abs=1e-9)

    def test_global_variance_share_is_floor(self):
        assert SpatialCorrelation().global_variance_share == pytest.approx(0.42)

    def test_invalid_profiles_rejected(self):
        with pytest.raises(ValueError):
            SpatialCorrelation(neighbor_correlation=0.3, floor_correlation=0.5)
        with pytest.raises(ValueError):
            SpatialCorrelation(cutoff_distance=0.5)
        with pytest.raises(ValueError):
            SpatialCorrelation(floor_tolerance=2.0)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            SpatialCorrelation().total_correlation(-1.0)

    def test_exponential_correlation_factory(self):
        profile = exponential_correlation(0.9, 0.4, 10.0)
        assert profile.neighbor_correlation == 0.9
        assert profile.floor_correlation == 0.4
        assert profile.cutoff_distance == 10.0

    def test_flat_profile(self):
        profile = SpatialCorrelation(neighbor_correlation=0.4, floor_correlation=0.4)
        assert profile.total_correlation(3.0) == pytest.approx(0.4)
        assert profile.local_correlation(3.0) == 0.0


class TestMatrices:
    def test_local_matrix_properties(self):
        partition = GridPartition.regular(Die(12.0, 12.0), 3.0)
        profile = SpatialCorrelation()
        matrix = profile.local_correlation_matrix(partition)
        assert matrix.shape == (16, 16)
        assert np.allclose(np.diag(matrix), 1.0)
        assert np.allclose(matrix, matrix.T)
        assert np.linalg.eigvalsh(matrix).min() >= -1e-9

    def test_nearby_grids_more_correlated_than_distant(self):
        partition = GridPartition.regular(Die(20.0, 4.0), 4.0)
        matrix = SpatialCorrelation().local_correlation_matrix(partition)
        assert matrix[0, 1] > matrix[0, 4]

    def test_covariance_matrix_scales_with_sigma(self):
        partition = GridPartition.regular(Die(8.0, 8.0), 4.0)
        profile = SpatialCorrelation()
        covariance = profile.covariance_matrix(partition, local_sigma=2.0)
        correlation = profile.local_correlation_matrix(partition)
        assert np.allclose(covariance, 4.0 * correlation)

    def test_negative_sigma_rejected(self):
        partition = GridPartition.regular(Die(8.0, 8.0), 4.0)
        with pytest.raises(ValueError):
            SpatialCorrelation().covariance_matrix(partition, -1.0)


class TestPsdProjection:
    def test_already_psd_matrix_unchanged(self):
        matrix = np.array([[1.0, 0.5], [0.5, 1.0]])
        assert np.allclose(nearest_positive_semidefinite(matrix), matrix)

    def test_indefinite_matrix_projected(self):
        matrix = np.array(
            [[1.0, 0.9, 0.1], [0.9, 1.0, 0.9], [0.1, 0.9, 1.0]]
        )
        projected = nearest_positive_semidefinite(matrix)
        assert np.linalg.eigvalsh(projected).min() >= 0.0
        assert np.allclose(projected, projected.T)

    def test_projection_preserves_symmetric_part(self):
        rng = np.random.default_rng(2)
        matrix = rng.standard_normal((4, 4))
        projected = nearest_positive_semidefinite(matrix)
        assert np.allclose(projected, projected.T)
        assert np.linalg.eigvalsh(projected).min() >= -1e-12
