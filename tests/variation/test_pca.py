"""Tests of the PCA decomposition of correlated grid variables."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.variation.grid import Die, GridPartition
from repro.variation.pca import decompose_covariance
from repro.variation.spatial import SpatialCorrelation


def _random_covariance(size: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    factor = rng.standard_normal((size, size))
    return factor @ factor.T / size


class TestDecomposition:
    def test_reconstructs_covariance_exactly(self):
        covariance = _random_covariance(6, 1)
        pca = decompose_covariance(covariance)
        assert np.allclose(pca.reconstruct_covariance(), covariance, atol=1e-10)

    def test_transform_shapes(self):
        covariance = _random_covariance(5, 2)
        pca = decompose_covariance(covariance)
        assert pca.num_variables == 5
        assert pca.transform.shape == (5, pca.num_components)
        assert pca.inverse_transform.shape == (pca.num_components, 5)

    def test_inverse_transform_is_left_inverse_on_component_space(self):
        covariance = _random_covariance(4, 3)
        pca = decompose_covariance(covariance)
        identity = pca.inverse_transform @ pca.transform
        assert np.allclose(identity, np.eye(pca.num_components), atol=1e-9)

    def test_eigenvalues_sorted_descending(self):
        covariance = _random_covariance(8, 4)
        pca = decompose_covariance(covariance)
        assert np.all(np.diff(pca.eigenvalues) <= 1e-12)

    def test_explained_variance_sums_to_one(self):
        covariance = _random_covariance(5, 5)
        pca = decompose_covariance(covariance)
        assert pca.explained_variance_ratio().sum() == pytest.approx(1.0, abs=1e-9)

    def test_rank_deficient_covariance_drops_components(self):
        base = _random_covariance(3, 6)
        covariance = np.zeros((5, 5))
        covariance[:3, :3] = base
        pca = decompose_covariance(covariance)
        assert pca.num_components == 3

    def test_variance_tolerance_truncates(self):
        covariance = np.diag([100.0, 1.0, 0.01, 0.0001])
        pca = decompose_covariance(covariance, variance_tolerance=0.02)
        assert pca.num_components < 4

    def test_zero_covariance_keeps_one_component(self):
        pca = decompose_covariance(np.zeros((3, 3)))
        assert pca.num_components == 1
        assert np.allclose(pca.transform, 0.0)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            decompose_covariance(np.zeros((2, 3)))

    def test_coefficients_for_row(self):
        covariance = _random_covariance(4, 7)
        pca = decompose_covariance(covariance)
        assert np.allclose(pca.coefficients_for(2), pca.transform[2])


class TestStatisticalEquivalence:
    def test_sampled_components_reproduce_grid_covariance(self):
        partition = GridPartition.regular(Die(12.0, 12.0), 4.0)
        correlation = SpatialCorrelation().local_correlation_matrix(partition)
        pca = decompose_covariance(correlation)
        rng = np.random.default_rng(8)
        x = rng.standard_normal((pca.num_components, 200000))
        grid_samples = pca.transform @ x
        empirical = np.cov(grid_samples)
        assert np.allclose(empirical, correlation, atol=0.02)

    @given(st.integers(min_value=2, max_value=7), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=25, deadline=None)
    def test_reconstruction_property(self, size, seed):
        covariance = _random_covariance(size, seed)
        pca = decompose_covariance(covariance)
        assert np.allclose(pca.reconstruct_covariance(), covariance, atol=1e-8)
