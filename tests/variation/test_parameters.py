"""Tests of process-parameter budgets."""

import math

import pytest

from repro.variation.parameters import ParameterSet, ProcessParameter, nassif_parameters


class TestProcessParameter:
    def test_shares_must_sum_to_one(self):
        with pytest.raises(ValueError):
            ProcessParameter("L", 0.1, 0.5, 0.5, 0.5)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            ProcessParameter("L", -0.1)

    def test_negative_share_rejected(self):
        with pytest.raises(ValueError):
            ProcessParameter("L", 0.1, -0.1, 0.9, 0.2)

    def test_component_sigmas_recombine_to_total(self):
        parameter = ProcessParameter("L", 0.157, 0.4, 0.4, 0.2)
        total = math.sqrt(
            parameter.global_sigma_fraction ** 2
            + parameter.local_sigma_fraction ** 2
            + parameter.random_sigma_fraction ** 2
        )
        assert total == pytest.approx(0.157)


class TestParameterSet:
    def test_duplicate_names_rejected(self):
        parameters = ParameterSet([ProcessParameter("L", 0.1)])
        with pytest.raises(ValueError):
            parameters.add(ProcessParameter("L", 0.2))

    def test_lookup_and_iteration(self):
        parameters = nassif_parameters()
        assert "Leff" in parameters
        assert parameters["Vth"].sigma_fraction == pytest.approx(0.044)
        assert len(parameters) == 4
        assert parameters.names == ("Leff", "Tox", "Vth", "Load")

    def test_combined_sigma_is_root_sum_square(self):
        parameters = nassif_parameters()
        expected = math.sqrt(0.157 ** 2 + 0.053 ** 2 + 0.044 ** 2 + 0.15 ** 2)
        assert parameters.combined_sigma_fraction() == pytest.approx(expected)

    def test_combined_sigma_with_weights(self):
        parameters = ParameterSet(
            [ProcessParameter("A", 0.1), ProcessParameter("B", 0.2)]
        )
        weighted = parameters.combined_sigma_fraction({"B": 0.0})
        assert weighted == pytest.approx(0.1)

    def test_component_sigma_fractions_recombine(self):
        parameters = nassif_parameters()
        global_frac, local_frac, random_frac = parameters.component_sigma_fractions()
        total = math.sqrt(global_frac ** 2 + local_frac ** 2 + random_frac ** 2)
        assert total == pytest.approx(parameters.combined_sigma_fraction())

    def test_paper_quoted_sigmas(self):
        parameters = nassif_parameters()
        assert parameters["Leff"].sigma_fraction == pytest.approx(0.157)
        assert parameters["Tox"].sigma_fraction == pytest.approx(0.053)
        assert parameters["Vth"].sigma_fraction == pytest.approx(0.044)
        assert parameters["Load"].sigma_fraction == pytest.approx(0.15)
