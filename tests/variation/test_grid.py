"""Tests of die geometry and grid partitioning."""

import numpy as np
import pytest

from repro.variation.grid import Die, GridCell, GridPartition


class TestDie:
    def test_area_and_bounds(self):
        die = Die(10.0, 4.0, 1.0, 2.0)
        assert die.area == 40.0
        assert die.bounds == (1.0, 2.0, 11.0, 6.0)

    def test_contains(self):
        die = Die(10.0, 10.0)
        assert die.contains(0.0, 0.0)
        assert die.contains(10.0, 10.0)
        assert not die.contains(10.1, 5.0)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            Die(0.0, 5.0)

    def test_shifted(self):
        die = Die(2.0, 3.0).shifted(1.0, -1.0)
        assert die.origin_x == 1.0
        assert die.origin_y == -1.0
        assert die.width == 2.0


class TestGridCell:
    def test_center_and_membership(self):
        cell = GridCell(0, 0.0, 0.0, 2.0, 4.0)
        assert cell.center == (1.0, 2.0)
        assert cell.contains(0.0, 0.0)
        assert not cell.contains(2.0, 1.0)  # half-open upper edge
        assert cell.contains_closed(2.0, 4.0)
        assert cell.width == 2.0
        assert cell.height == 4.0


class TestGridPartition:
    def test_regular_partition_covers_die(self):
        partition = GridPartition.regular(Die(10.0, 10.0), 4.0)
        assert partition.num_grids == 9  # 3 x 3 with clipped last row/column
        cells = partition.cells
        assert cells[-1].xmax == pytest.approx(10.0)
        assert cells[-1].ymax == pytest.approx(10.0)

    def test_every_point_maps_to_exactly_one_grid(self):
        partition = GridPartition.regular(Die(9.0, 9.0), 3.0)
        rng = np.random.default_rng(1)
        for _unused in range(200):
            x, y = rng.uniform(0.0, 9.0, size=2)
            index = partition.grid_index_at(x, y)
            assert partition.cells[index].contains_closed(x, y)

    def test_boundary_points_resolve(self):
        partition = GridPartition.regular(Die(6.0, 6.0), 3.0)
        assert partition.grid_index_at(6.0, 6.0) == partition.num_grids - 1

    def test_point_outside_raises(self):
        partition = GridPartition.regular(Die(6.0, 6.0), 3.0)
        with pytest.raises(ValueError):
            partition.grid_index_at(7.0, 1.0)

    def test_for_cell_count_respects_limit(self):
        die = Die(20.0, 20.0)
        partition = GridPartition.for_cell_count(die, num_cells=950, max_cells_per_grid=100)
        # At least ceil(950 / 100) = 10 grids are required.
        assert partition.num_grids >= 10

    def test_for_cell_count_single_grid_for_tiny_module(self):
        partition = GridPartition.for_cell_count(Die(5.0, 5.0), num_cells=20)
        assert partition.num_grids == 1

    def test_invalid_grid_size(self):
        with pytest.raises(ValueError):
            GridPartition.regular(Die(5.0, 5.0), 0.0)

    def test_distance_matrix_in_grid_units(self):
        partition = GridPartition.regular(Die(6.0, 3.0), 3.0)
        distances = partition.distance_matrix()
        assert distances.shape == (2, 2)
        assert distances[0, 0] == 0.0
        assert distances[0, 1] == pytest.approx(1.0)

    def test_centers_and_iteration(self):
        partition = GridPartition.regular(Die(4.0, 2.0), 2.0)
        centers = partition.centers()
        assert len(centers) == len(partition) == 2
        assert centers[0] == (1.0, 1.0)
        assert [cell.index for cell in partition] == [0, 1]

    def test_empty_partition_rejected(self):
        with pytest.raises(ValueError):
            GridPartition(Die(1.0, 1.0), [], 1.0)
