"""Defensive reads of damaged store entries, across every session kind.

A store file can be damaged in ways the writer never sees — a crash
between ``open`` and the atomic rename leaves a zero-byte file, a torn
copy leaves a mid-write truncation.  Every loader must answer with the
*typed* :class:`~repro.errors.StoreCorruptError` naming the offending
file, and ``on_corrupt="rebuild"`` must quarantine the evidence and
rebuild a cold session from the live graph — never a silent fallback.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.canonical import CanonicalForm
from repro.errors import StoreCorruptError
from repro.model.extraction import ExtractionSession
from repro.montecarlo.flat import MonteCarloSession
from repro.store import (
    load_allpairs_session,
    load_extraction_session,
    load_incremental_timer,
    load_montecarlo_session,
    read_entry,
    save_allpairs_session,
    save_extraction_session,
    save_incremental_timer,
    save_montecarlo_session,
)
from repro.timing.allpairs import AllPairsSession
from repro.timing.graph import TimingGraph
from repro.timing.incremental import IncrementalTimer

KINDS = ("timer", "allpairs", "montecarlo", "extraction")

#: ``kind -> (session factory, saver, loader)``; the factory takes
#: ``(graph, variation)`` and the loader forwards ``**kwargs`` so tests
#: can pass ``on_corrupt=``/``variation=`` uniformly.
_SESSIONS = {
    "timer": (
        lambda graph, variation: IncrementalTimer(graph),
        save_incremental_timer,
        load_incremental_timer,
    ),
    "allpairs": (
        lambda graph, variation: AllPairsSession(graph),
        save_allpairs_session,
        load_allpairs_session,
    ),
    "montecarlo": (
        lambda graph, variation: MonteCarloSession(graph, num_samples=64),
        save_montecarlo_session,
        load_montecarlo_session,
    ),
    "extraction": (
        lambda graph, variation: ExtractionSession(graph, variation),
        save_extraction_session,
        load_extraction_session,
    ),
}


def _diamond_graph(name="diamond"):
    graph = TimingGraph(name, 2)
    graph.mark_input("a")
    graph.mark_input("b")
    graph.mark_output("z")
    graph.add_edge("a", "m", CanonicalForm(10.0, 0.5, np.array([0.2, 0.1]), 0.3))
    graph.add_edge("b", "m", CanonicalForm(8.0, 0.3, np.array([0.1, 0.2]), 0.2))
    graph.add_edge("m", "z", CanonicalForm(4.0, 0.1, np.array([0.05, 0.05]), 0.1))
    graph.add_edge("a", "z", CanonicalForm(12.0, 0.2, np.array([0.1, 0.0]), 0.15))
    return graph


@pytest.fixture
def saved_entry(request, tmp_path, random_graph_and_variation):
    """``(kind, path, graph, variation)`` of one healthy saved session."""
    kind = request.param
    if kind == "extraction":
        graph, variation = random_graph_and_variation
    else:
        graph, variation = _diamond_graph(), None
    factory, save, _load = _SESSIONS[kind]
    path = tmp_path / ("%s.npz" % kind)
    save(factory(graph, variation), path)
    return kind, path, graph, variation


def _zero_byte(path):
    path.write_bytes(b"")


def _truncate_mid_write(path):
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])


@pytest.mark.parametrize("saved_entry", KINDS, indirect=True)
@pytest.mark.parametrize(
    "damage", (_zero_byte, _truncate_mid_write), ids=("zero-byte", "mid-write")
)
def test_damaged_entry_raises_typed_error_naming_the_file(saved_entry, damage):
    kind, path, graph, variation = saved_entry
    _factory, _save, load = _SESSIONS[kind]
    damage(path)

    # The raw reader and the session loader agree, and both name the file.
    with pytest.raises(StoreCorruptError, match=path.name):
        read_entry(path, kind=kind)
    with pytest.raises(StoreCorruptError, match=path.name):
        load(path, graph=graph)
    assert path.exists()  # on_corrupt="error" leaves the evidence in place


@pytest.mark.parametrize("saved_entry", KINDS, indirect=True)
@pytest.mark.parametrize(
    "damage", (_zero_byte, _truncate_mid_write), ids=("zero-byte", "mid-write")
)
def test_rebuild_quarantines_and_returns_a_cold_session(saved_entry, damage):
    kind, path, graph, variation = saved_entry
    _factory, _save, load = _SESSIONS[kind]
    damage(path)

    kwargs = {"variation": variation} if kind == "extraction" else {}
    session = load(path, graph=graph, on_corrupt="rebuild", **kwargs)
    assert session.graph is graph
    assert not path.exists()
    quarantined = path.with_name(path.name + ".corrupt")
    assert quarantined.exists()
    reason = session.store_fallback_reason
    assert reason is not None and "quarantined" in reason
    assert path.name in reason


@pytest.mark.parametrize("saved_entry", KINDS, indirect=True)
def test_rebuild_without_live_graph_raises(saved_entry):
    kind, path, _graph, _variation = saved_entry
    _factory, _save, load = _SESSIONS[kind]
    _zero_byte(path)
    with pytest.raises(StoreCorruptError, match="live graph"):
        load(path, on_corrupt="rebuild")


def test_extraction_rebuild_needs_the_variation_model(
    tmp_path, random_graph_and_variation
):
    """A corrupt entry cannot supply the stored variation model, so the
    extraction rebuild refuses unless the caller passes the live one."""
    graph, variation = random_graph_and_variation
    path = tmp_path / "x.npz"
    save_extraction_session(ExtractionSession(graph, variation), path)
    _zero_byte(path)
    with pytest.raises(StoreCorruptError, match="variation"):
        load_extraction_session(path, graph=graph, on_corrupt="rebuild")
    # With the model, the rebuild quarantines and succeeds.
    session = load_extraction_session(
        path, graph=graph, on_corrupt="rebuild", variation=variation
    )
    assert session.store_fallback_reason is not None


def test_quarantine_never_overwrites_earlier_evidence(tmp_path):
    """Repeated corruption of the same name stacks ``.corrupt.N`` files."""
    graph = _diamond_graph()
    path = tmp_path / "t.npz"
    for expected in ("t.npz.corrupt", "t.npz.corrupt.1"):
        save_incremental_timer(IncrementalTimer(graph), path)
        _truncate_mid_write(path)
        load_incremental_timer(path, graph=graph, on_corrupt="rebuild")
        assert (tmp_path / expected).exists()
    assert (tmp_path / "t.npz.corrupt").read_bytes() != b""


@pytest.mark.parametrize("mode", ("maybe", "never"))
def test_invalid_on_corrupt_mode_is_rejected(tmp_path, mode):
    graph = _diamond_graph()
    path = tmp_path / "t.npz"
    save_incremental_timer(IncrementalTimer(graph), path)
    with pytest.raises(ValueError, match="on_corrupt"):
        load_incremental_timer(path, graph=graph, on_corrupt=mode)


def test_rebuilt_montecarlo_session_answers_like_a_cold_one(tmp_path):
    """The rebuilt session is a *real* session: its resample equals a
    freshly constructed one draw for draw."""
    graph = _diamond_graph()
    path = tmp_path / "mc.npz"
    save_montecarlo_session(MonteCarloSession(graph, num_samples=64), path)
    _truncate_mid_write(path)
    rebuilt = load_montecarlo_session(path, graph=graph, on_corrupt="rebuild")
    cold = MonteCarloSession(graph)
    assert np.array_equal(rebuilt.revalidate().samples, cold.revalidate().samples)
