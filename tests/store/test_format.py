"""Tests of the columnar on-disk entry format (write/read/mmap/corruption)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import StoreCorruptError, StoreKeyError
from repro.store import (
    META_COLUMN,
    STORE_FORMAT_NAME,
    STORE_FORMAT_VERSION,
    read_entry,
    write_entry,
)


def _columns():
    return {
        "floats": np.linspace(0.0, 1.0, 48).reshape(12, 4),
        "ints": np.arange(7, dtype=np.int64),
        "names": np.asarray(["alpha", "beta", "gamma"]),
        "flags": np.asarray([True, False, True]),
        "empty": np.empty((0, 3), dtype=float),
    }


def _write_raw(path, header, arrays):
    """Bypass ``write_entry`` to craft malformed entries for the reader."""
    encoded = np.frombuffer(json.dumps(header).encode("utf-8"), dtype=np.uint8)
    with open(path, "wb") as handle:
        np.savez(handle, **{META_COLUMN: encoded}, **arrays)


def _valid_header(columns):
    return {
        "format": STORE_FORMAT_NAME,
        "version": STORE_FORMAT_VERSION,
        "kind": "timer",
        "graph_id": "g",
        "revision": 3,
        "meta": {},
        "columns": sorted(columns),
    }


class TestRoundTrip:
    def test_key_meta_and_columns_survive(self, tmp_path):
        path = tmp_path / "entry.npz"
        write_entry(path, "timer", "c17", 42, _columns(), meta={"note": "x"})
        entry = read_entry(path)
        assert entry.kind == "timer"
        assert entry.graph_id == "c17"
        assert entry.revision == 42
        assert entry.meta == {"note": "x"}
        for name, array in _columns().items():
            assert np.array_equal(entry.columns[name], array)
            assert entry.columns[name].dtype == array.dtype

    def test_kind_assertion(self, tmp_path):
        path = write_entry(tmp_path / "e.npz", "timer", "g", 0, _columns())
        assert read_entry(path, kind="timer").kind == "timer"
        with pytest.raises(StoreKeyError, match="expected 'montecarlo'"):
            read_entry(path, kind="montecarlo")

    def test_write_is_atomic_no_temp_left_behind(self, tmp_path):
        path = write_entry(tmp_path / "e.npz", "timer", "g", 0, _columns())
        assert [p.name for p in tmp_path.iterdir()] == [path.name]

    def test_overwrite_replaces_entry(self, tmp_path):
        path = tmp_path / "e.npz"
        write_entry(path, "timer", "g", 1, {"a": np.arange(3)})
        write_entry(path, "timer", "g", 2, {"a": np.arange(5)})
        entry = read_entry(path)
        assert entry.revision == 2
        assert entry.columns["a"].shape == (5,)

    def test_nbytes_report_accounts_for_every_column(self, tmp_path):
        path = write_entry(tmp_path / "e.npz", "timer", "g", 0, _columns())
        report = read_entry(path).nbytes_report()
        assert set(report) == set(_columns()) | {"total", "file_bytes"}
        assert report["total"] == sum(
            report[name] for name in _columns()
        )
        assert report["file_bytes"] >= report["total"] > 0


class TestMmap:
    def test_numeric_columns_come_back_as_readonly_views(self, tmp_path):
        path = write_entry(tmp_path / "e.npz", "timer", "g", 0, _columns())
        entry = read_entry(path, mmap=True)
        mapped = entry.columns["floats"]
        assert isinstance(mapped, np.memmap)
        assert np.array_equal(mapped, _columns()["floats"])
        with pytest.raises(ValueError):
            mapped[0, 0] = 99.0

    def test_empty_columns_fall_back_to_materialised_reads(self, tmp_path):
        path = write_entry(tmp_path / "e.npz", "timer", "g", 0, _columns())
        entry = read_entry(path, mmap=True)
        assert not isinstance(entry.columns["empty"], np.memmap)
        assert entry.columns["empty"].shape == (0, 3)


class TestWriteValidation:
    def test_reserved_meta_column_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="reserved"):
            write_entry(
                tmp_path / "e.npz", "timer", "g", 0, {META_COLUMN: np.arange(3)}
            )

    def test_object_dtype_column_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="object dtype"):
            write_entry(
                tmp_path / "e.npz", "timer", "g", 0,
                {"bad": np.asarray([{"a": 1}], dtype=object)},
            )

    @pytest.mark.parametrize("kind", ["", "no spaces", "no/slash"])
    def test_bad_kind_rejected(self, tmp_path, kind):
        with pytest.raises(ValueError, match="kind"):
            write_entry(tmp_path / "e.npz", kind, "g", 0, {})


class TestCorruption:
    """Every unreadable file raises a typed error instead of mis-parsing."""

    def test_truncated_file(self, tmp_path):
        path = write_entry(tmp_path / "e.npz", "timer", "g", 0, _columns())
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(StoreCorruptError):
            read_entry(path)

    def test_garbage_bytes(self, tmp_path):
        path = tmp_path / "e.npz"
        path.write_bytes(b"this is not a zip archive at all")
        with pytest.raises(StoreCorruptError, match="unreadable"):
            read_entry(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(StoreCorruptError):
            read_entry(tmp_path / "never_written.npz")

    def test_missing_meta_header(self, tmp_path):
        path = tmp_path / "e.npz"
        with open(path, "wb") as handle:
            np.savez(handle, a=np.arange(3))
        with pytest.raises(StoreCorruptError, match=META_COLUMN):
            read_entry(path)

    def test_foreign_format_tag(self, tmp_path):
        path = tmp_path / "e.npz"
        header = _valid_header([])
        header["format"] = "someone-elses-store"
        _write_raw(path, header, {})
        with pytest.raises(StoreCorruptError, match="format"):
            read_entry(path)

    def test_unsupported_format_version(self, tmp_path):
        path = tmp_path / "e.npz"
        header = _valid_header([])
        header["version"] = STORE_FORMAT_VERSION + 999
        _write_raw(path, header, {})
        with pytest.raises(StoreCorruptError, match="version"):
            read_entry(path)

    @pytest.mark.parametrize("field", ["kind", "graph_id", "revision", "columns"])
    def test_missing_header_field(self, tmp_path, field):
        path = tmp_path / "e.npz"
        header = _valid_header([])
        del header[field]
        _write_raw(path, header, {})
        with pytest.raises(StoreCorruptError, match=field):
            read_entry(path)

    def test_missing_declared_column(self, tmp_path):
        # The header is authoritative: a member silently dropped from the
        # archive is corruption, not an absent optional.
        path = tmp_path / "e.npz"
        _write_raw(path, _valid_header(["a", "b"]), {"a": np.arange(3)})
        with pytest.raises(StoreCorruptError, match="'b'"):
            read_entry(path)
