"""Tests of the versioned model-exchange library (:class:`ModelStore`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import StoreCorruptError, StoreKeyError
from repro.model.extraction import extract_timing_model
from repro.store import ModelStore, write_entry


@pytest.fixture
def models(random_graph_and_variation):
    graph, variation = random_graph_and_variation
    loose = extract_timing_model(graph, variation, threshold=0.05, name="rand60")
    tight = extract_timing_model(graph, variation, threshold=0.2, name="rand60")
    return loose, tight


class TestVersioning:
    def test_put_assigns_monotonic_versions(self, tmp_path, models):
        store = ModelStore(tmp_path / "lib")
        loose, tight = models
        assert store.put(loose) == 1
        assert store.put(tight) == 2
        assert store.versions("rand60") == [1, 2]
        assert store.latest_version("rand60") == 2
        assert store.names() == ["rand60"]

    def test_get_defaults_to_latest_and_pins_explicitly(self, tmp_path, models):
        store = ModelStore(tmp_path / "lib")
        loose, tight = models
        store.put(loose)
        store.put(tight)
        assert store.get("rand60").graph.num_edges == tight.graph.num_edges
        pinned = store.get("rand60", version=1)
        assert pinned.graph.num_edges == loose.graph.num_edges
        for original, copy in zip(loose.graph.edges, pinned.graph.edges):
            assert copy.delay.is_close(original.delay)

    def test_existing_versions_are_immutable(self, tmp_path, models):
        store = ModelStore(tmp_path / "lib")
        loose, tight = models
        store.put(loose)
        store.put(tight, name="rand60")  # appends v2, never overwrites v1
        assert store.get("rand60", version=1).graph.num_edges == (
            loose.graph.num_edges
        )

    def test_explicit_name_overrides_the_models_own(self, tmp_path, models):
        store = ModelStore(tmp_path / "lib")
        store.put(models[0], name="vendor_block")
        assert store.names() == ["vendor_block"]
        assert store.get("vendor_block").name == "rand60"


class TestKeyErrors:
    def test_unknown_name(self, tmp_path, models):
        store = ModelStore(tmp_path / "lib")
        store.put(models[0])
        with pytest.raises(StoreKeyError, match="no model named"):
            store.versions("missing")
        with pytest.raises(StoreKeyError, match="no model named"):
            store.get("missing")

    def test_unknown_version(self, tmp_path, models):
        store = ModelStore(tmp_path / "lib")
        store.put(models[0])
        with pytest.raises(StoreKeyError, match="no version 7"):
            store.get("rand60", version=7)

    def test_empty_library(self, tmp_path):
        store = ModelStore(tmp_path / "nothing_here")
        assert store.names() == []
        assert store.nbytes_report() == {"total": 0}

    @pytest.mark.parametrize("name", ["", "a/b", "a\\b", " padded ", "x@v1"])
    def test_unsafe_names_rejected(self, tmp_path, models, name):
        store = ModelStore(tmp_path / "lib")
        with pytest.raises(ValueError, match="name"):
            store.put(models[0], name=name)


class TestCorruption:
    def test_garbage_payload_is_corruption(self, tmp_path):
        store = ModelStore(tmp_path / "lib")
        # A well-formed entry whose JSON column is garbage bytes.
        write_entry(
            store.root / "bad@v1.npz", "model", "bad", 1,
            {"model.json": np.frombuffer(b"\xff\xfe not json", dtype=np.uint8)},
        )
        with pytest.raises(StoreCorruptError, match="payload"):
            store.get("bad")

    def test_mis_keyed_entry_is_a_key_error(self, tmp_path):
        store = ModelStore(tmp_path / "lib")
        # The filename promises (other, 1); the entry is keyed (bad, 2).
        write_entry(
            store.root / "other@v1.npz", "model", "bad", 2,
            {"model.json": np.frombuffer(b"{}", dtype=np.uint8)},
        )
        with pytest.raises(StoreKeyError, match="keyed"):
            store.get("other")

    def test_foreign_kind_is_a_key_error(self, tmp_path):
        store = ModelStore(tmp_path / "lib")
        write_entry(store.root / "x@v1.npz", "timer", "x", 1, {})
        with pytest.raises(StoreKeyError, match="'timer'"):
            store.get("x")


class TestAccounting:
    def test_nbytes_report_lists_every_entry(self, tmp_path, models):
        store = ModelStore(tmp_path / "lib")
        loose, tight = models
        store.put(loose)
        store.put(tight)
        store.put(tight, name="alt")
        report = store.nbytes_report()
        assert set(report) == {"rand60@v1", "rand60@v2", "alt@v1", "total"}
        assert report["total"] == sum(
            size for key, size in report.items() if key != "total"
        )
        assert all(size > 0 for size in report.values())
