"""Warm-start parity of the session snapshots (timer/allpairs/MC/extraction).

The acceptance property of the store: a process that saves a session,
dies and warm-starts answers every query **bit-identically**
(``==`` on canonical forms, ``np.array_equal`` on sample matrices) to a
process that never restarted — including when the graph kept evolving
between the snapshot and the load, in which case the journal window
replays through the sessions' ordinary refresh paths.
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.core.canonical import CanonicalForm
from repro.errors import StoreCorruptError, StoreKeyError, StoreReplayError
from repro.model.extraction import ExtractionSession
from repro.montecarlo.flat import MonteCarloSession
from repro.store import (
    graph_columns,
    graph_from_columns,
    graph_meta,
    load_allpairs_session,
    load_extraction_session,
    load_incremental_timer,
    load_montecarlo_session,
    save_allpairs_session,
    save_extraction_session,
    save_incremental_timer,
    save_montecarlo_session,
)
from repro.timing.allpairs import AllPairsSession
from repro.timing.graph import TimingGraph
from repro.timing.incremental import IncrementalTimer

SRC_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "src",
)


def _diamond_graph(name="diamond", journal_limit=None):
    """A small deterministic graph with reconvergent fanout (2 locals)."""
    kwargs = {} if journal_limit is None else {"journal_limit": journal_limit}
    graph = TimingGraph(name, 2, **kwargs)
    graph.mark_input("a")
    graph.mark_input("b")
    graph.mark_output("z")
    graph.add_edge("a", "m", CanonicalForm(10.0, 0.5, np.array([0.2, 0.1]), 0.3))
    graph.add_edge("b", "m", CanonicalForm(8.0, 0.3, np.array([0.1, 0.2]), 0.2))
    graph.add_edge("m", "z", CanonicalForm(4.0, 0.1, np.array([0.05, 0.05]), 0.1))
    graph.add_edge("a", "z", CanonicalForm(12.0, 0.2, np.array([0.1, 0.0]), 0.15))
    return graph


def _retime(graph, index, factor):
    edge = graph.edges[index]
    graph.replace_edge_delay(edge, edge.delay.scale(factor))


# ----------------------------------------------------------------------
# Graph column round trip
# ----------------------------------------------------------------------
class TestGraphColumns:
    def test_round_trip_preserves_everything(self, tiny_graph):
        graph = tiny_graph.copy()
        _retime(graph, 2, 1.2)  # a non-trivial revision history
        rebuilt = graph_from_columns(graph_columns(graph), graph_meta(graph))
        assert rebuilt.name == graph.name
        assert rebuilt.num_locals == graph.num_locals
        assert list(rebuilt.vertices) == list(graph.vertices)
        assert list(rebuilt.inputs) == list(graph.inputs)
        assert list(rebuilt.outputs) == list(graph.outputs)
        assert rebuilt.revision == graph.revision
        for original, copy in zip(graph.edges, rebuilt.edges):
            assert copy.edge_id == original.edge_id
            assert copy.source == original.source
            assert copy.sink == original.sink
            assert copy.delay == original.delay

    def test_rebuilt_graph_continues_the_id_sequence(self, tiny_graph):
        graph = tiny_graph.copy()
        rebuilt = graph_from_columns(graph_columns(graph), graph_meta(graph))
        a = graph.add_edge(graph.inputs[0], graph.outputs[0],
                           CanonicalForm(1.0, 0.1, None, 0.1))
        b = rebuilt.add_edge(rebuilt.inputs[0], rebuilt.outputs[0],
                             CanonicalForm(1.0, 0.1, None, 0.1))
        assert a.edge_id == b.edge_id

    def test_ragged_local_widths_survive(self):
        # Edges carrying fewer locals than the graph declares must come
        # back at their true width, not padded to the maximum.
        graph = _diamond_graph()
        graph.add_edge("b", "z", CanonicalForm(6.0, 0.2, np.array([0.3]), 0.1))
        graph.add_edge("m", "z", CanonicalForm(5.0, 0.2, None, 0.1))
        rebuilt = graph_from_columns(graph_columns(graph), graph_meta(graph))
        for original, copy in zip(graph.edges, rebuilt.edges):
            assert copy.delay.num_locals == original.delay.num_locals
            assert copy.delay == original.delay

    def test_missing_column_is_corruption(self):
        graph = _diamond_graph()
        columns = graph_columns(graph)
        del columns["graph.edge_coeffs"]
        with pytest.raises(StoreCorruptError):
            graph_from_columns(columns, graph_meta(graph))


# ----------------------------------------------------------------------
# IncrementalTimer
# ----------------------------------------------------------------------
class TestIncrementalTimer:
    def test_cold_load_rebuilds_graph_and_answers(self, tmp_path):
        graph = _diamond_graph()
        timer = IncrementalTimer(graph, convergence_tolerance=0.0)
        delay = timer.circuit_delay()
        save_incremental_timer(timer, tmp_path / "t.npz")
        loaded = load_incremental_timer(tmp_path / "t.npz")
        assert loaded.graph is not graph
        assert loaded.graph.revision == graph.revision
        assert loaded.circuit_delay() == delay
        assert loaded.store_fallback_reason is None

    def test_warm_replay_matches_never_restarted_session(self, tmp_path):
        graph = _diamond_graph()
        timer = IncrementalTimer(graph)
        timer.circuit_delay()
        save_incremental_timer(timer, tmp_path / "t.npz")
        # The graph keeps evolving after the snapshot ...
        _retime(graph, 0, 1.3)
        graph.add_edge("b", "z", CanonicalForm(20.0, 0.4, np.array([0.2, 0.2]), 0.2))
        _retime(graph, 1, 0.8)
        reference = timer.circuit_delay()  # the never-restarted answer
        # ... and the loaded session replays the journal window.
        loaded = load_incremental_timer(tmp_path / "t.npz", graph=graph)
        assert loaded.circuit_delay() == reference
        assert loaded.store_fallback_reason is None

    def test_save_load_methods_round_trip(self, tmp_path):
        graph = _diamond_graph()
        timer = IncrementalTimer(graph)
        delay = timer.circuit_delay()
        timer.save(tmp_path / "t.npz")
        assert IncrementalTimer.load(tmp_path / "t.npz").circuit_delay() == delay

    def test_graph_name_mismatch_is_a_key_error(self, tmp_path):
        timer = IncrementalTimer(_diamond_graph())
        save_incremental_timer(timer, tmp_path / "t.npz")
        with pytest.raises(StoreKeyError, match="'diamond'"):
            load_incremental_timer(
                tmp_path / "t.npz", graph=_diamond_graph(name="other")
            )

    def test_stale_graph_behind_the_snapshot_is_a_key_error(self, tmp_path):
        graph = _diamond_graph()
        timer = IncrementalTimer(graph)
        _retime(graph, 0, 1.1)  # entry revision > a fresh build's revision
        timer.circuit_delay()
        save_incremental_timer(timer, tmp_path / "t.npz")
        with pytest.raises(StoreKeyError, match="lineage"):
            load_incremental_timer(tmp_path / "t.npz", graph=_diamond_graph())

    def test_journal_overflow_raises_by_default(self, tmp_path):
        graph = _diamond_graph(journal_limit=2)
        timer = IncrementalTimer(graph)
        timer.circuit_delay()
        save_incremental_timer(timer, tmp_path / "t.npz")
        for _unused in range(5):  # blow the 2-entry journal
            _retime(graph, 0, 1.01)
        with pytest.raises(StoreReplayError, match="rebuild"):
            load_incremental_timer(tmp_path / "t.npz", graph=graph)

    def test_overflow_rebuild_is_explicit_never_silent(self, tmp_path):
        graph = _diamond_graph(journal_limit=2)
        timer = IncrementalTimer(graph)
        timer.circuit_delay()
        save_incremental_timer(timer, tmp_path / "t.npz")
        for _unused in range(5):
            _retime(graph, 0, 1.01)
        reference = timer.circuit_delay()
        loaded = load_incremental_timer(
            tmp_path / "t.npz", graph=graph, on_overflow="rebuild"
        )
        # The cold fallback still answers correctly — and says it is one.
        assert loaded.circuit_delay() == reference
        assert loaded.store_fallback_reason is not None
        assert "cannot replay" in loaded.store_fallback_reason

    def test_invalid_overflow_mode_rejected(self, tmp_path):
        timer = IncrementalTimer(_diamond_graph())
        save_incremental_timer(timer, tmp_path / "t.npz")
        with pytest.raises(ValueError, match="on_overflow"):
            load_incremental_timer(tmp_path / "t.npz", on_overflow="ignore")

    def test_truncated_entry_is_corruption_not_a_cold_fallback(self, tmp_path):
        timer = IncrementalTimer(_diamond_graph())
        save_incremental_timer(timer, tmp_path / "t.npz")
        data = (tmp_path / "t.npz").read_bytes()
        (tmp_path / "t.npz").write_bytes(data[: len(data) // 3])
        with pytest.raises(StoreCorruptError):
            load_incremental_timer(tmp_path / "t.npz", on_overflow="rebuild")

    def test_kind_mismatch_across_session_types(self, tmp_path):
        # A timer entry fed to the Monte Carlo loader is a key error, not
        # a mis-parse.
        timer = IncrementalTimer(_diamond_graph())
        save_incremental_timer(timer, tmp_path / "t.npz")
        with pytest.raises(StoreKeyError, match="'timer'"):
            load_montecarlo_session(tmp_path / "t.npz")

    def test_constraints_survive_the_round_trip(self, tmp_path):
        graph = _diamond_graph()
        timer = IncrementalTimer(
            graph,
            input_arrivals={"a": CanonicalForm(2.0, 0.1, np.array([0.1, 0.0]), 0.05)},
            required_time=CanonicalForm(30.0, 0.0, None, 0.0),
            convergence_tolerance=1e-12,
        )
        timer.circuit_delay()
        slacks = timer.slacks()
        save_incremental_timer(timer, tmp_path / "t.npz")
        loaded = load_incremental_timer(tmp_path / "t.npz")
        assert loaded.circuit_delay() == timer.circuit_delay()
        assert loaded.slacks() == slacks


# ----------------------------------------------------------------------
# AllPairsSession
# ----------------------------------------------------------------------
class TestAllPairsSession:
    def test_cold_load_matrices_are_bit_identical(self, tmp_path):
        graph = _diamond_graph()
        session = AllPairsSession(graph)
        session.refresh()
        save_allpairs_session(session, tmp_path / "ap.npz")
        loaded = load_allpairs_session(tmp_path / "ap.npz")
        assert np.array_equal(loaded.state.matrix_mean, session.state.matrix_mean)
        assert np.array_equal(loaded.state.matrix_valid, session.state.matrix_valid)
        assert loaded.store_fallback_reason is None

    def test_warm_replay_matches_never_restarted_session(self, tmp_path):
        graph = _diamond_graph()
        session = AllPairsSession(graph)
        session.refresh()
        save_allpairs_session(session, tmp_path / "ap.npz")
        _retime(graph, 3, 1.4)
        session.refresh()
        loaded = load_allpairs_session(tmp_path / "ap.npz", graph=graph)
        loaded.refresh()
        assert np.array_equal(loaded.state.matrix_mean, session.state.matrix_mean)

    def test_save_load_methods_round_trip(self, tmp_path):
        graph = _diamond_graph()
        session = AllPairsSession(graph)
        session.save(tmp_path / "ap.npz")
        loaded = AllPairsSession.load(tmp_path / "ap.npz")
        assert np.array_equal(loaded.state.matrix_mean, session.state.matrix_mean)


# ----------------------------------------------------------------------
# MonteCarloSession
# ----------------------------------------------------------------------
class TestMonteCarloSession:
    def test_cold_load_samples_are_bit_identical(self, tmp_path):
        graph = _diamond_graph()
        session = MonteCarloSession(graph, num_samples=256, seed=5, chunk_size=128)
        result = session.revalidate()
        save_montecarlo_session(session, tmp_path / "mc.npz")
        loaded = load_montecarlo_session(tmp_path / "mc.npz")
        assert np.array_equal(loaded.revalidate().samples, result.samples)
        assert loaded.store_fallback_reason is None

    def test_warm_replay_matches_never_restarted_session(self, tmp_path):
        graph = _diamond_graph()
        session = MonteCarloSession(graph, num_samples=256, seed=5, chunk_size=128)
        session.revalidate()
        save_montecarlo_session(session, tmp_path / "mc.npz")
        # Post-snapshot retime: the warm load must redraw exactly the rows
        # a never-restarted session redraws (counter-based streams).
        _retime(graph, 2, 1.25)
        reference = session.revalidate()
        loaded = load_montecarlo_session(tmp_path / "mc.npz", graph=graph)
        assert np.array_equal(loaded.revalidate().samples, reference.samples)

    def test_save_load_methods_round_trip(self, tmp_path):
        graph = _diamond_graph()
        session = MonteCarloSession(graph, num_samples=64, seed=9)
        result = session.revalidate()
        session.save(tmp_path / "mc.npz")
        loaded = MonteCarloSession.load(tmp_path / "mc.npz")
        assert np.array_equal(loaded.revalidate().samples, result.samples)


# ----------------------------------------------------------------------
# ExtractionSession
# ----------------------------------------------------------------------
class TestExtractionSession:
    def test_cold_load_re_extracts_the_same_model(
        self, tmp_path, random_graph_and_variation
    ):
        graph, variation = random_graph_and_variation
        session = ExtractionSession(graph, variation)
        model = session.extract(0.1)
        save_extraction_session(session, tmp_path / "x.npz")
        loaded = load_extraction_session(tmp_path / "x.npz")
        rebuilt = loaded.extract(0.1)
        assert rebuilt.graph.num_edges == model.graph.num_edges
        for original, copy in zip(model.graph.edges, rebuilt.graph.edges):
            assert copy.delay == original.delay
        assert loaded.store_fallback_reason is None

    def test_warm_replay_matches_never_restarted_session(
        self, tmp_path, random_graph_and_variation
    ):
        graph, variation = random_graph_and_variation
        session = ExtractionSession(graph, variation)
        session.extract(0.1)
        save_extraction_session(session, tmp_path / "x.npz")
        _retime(graph, 7, 1.5)
        reference = session.extract(0.1)
        loaded = load_extraction_session(tmp_path / "x.npz", graph=graph)
        rebuilt = loaded.extract(0.1)
        assert rebuilt.graph.num_edges == reference.graph.num_edges
        for original, copy in zip(reference.graph.edges, rebuilt.graph.edges):
            assert copy.delay == original.delay

    def test_criticality_cache_survives_with_argmax(
        self, tmp_path, random_graph_and_variation
    ):
        graph, variation = random_graph_and_variation
        session = ExtractionSession(graph, variation)
        session.save(tmp_path / "x.npz")
        loaded = ExtractionSession.load(tmp_path / "x.npz")
        assert loaded.criticalities.max_criticality == (
            session.criticalities.max_criticality
        )
        assert loaded.criticalities.argmax_pairs == (
            session.criticalities.argmax_pairs
        )


# ----------------------------------------------------------------------
# Cross-process warm start
# ----------------------------------------------------------------------
def test_warm_start_in_a_fresh_process_matches_a_fresh_build(tmp_path):
    """The restart story end to end: save here, warm-start over there.

    The parent saves a timer and a Monte Carlo session; a fresh
    interpreter rebuilds the same deterministic graph, attaches the saved
    entries warm and must answer bit-identically to sessions it builds
    from scratch — across a real process boundary, not just an object
    boundary.
    """
    graph = _diamond_graph()
    timer = IncrementalTimer(graph)
    timer.circuit_delay()
    save_incremental_timer(timer, tmp_path / "timer.npz")
    mc = MonteCarloSession(graph, num_samples=128, seed=3, chunk_size=64)
    mc.revalidate()
    save_montecarlo_session(mc, tmp_path / "mc.npz")

    script = tmp_path / "warm_start_check.py"
    script.write_text(
        textwrap.dedent(
            """
            import sys
            sys.path.insert(0, %r)

            import numpy as np

            from repro.core.canonical import CanonicalForm
            from repro.montecarlo.flat import MonteCarloSession
            from repro.store import load_incremental_timer, load_montecarlo_session
            from repro.timing.graph import TimingGraph
            from repro.timing.incremental import IncrementalTimer


            def build_graph():
                graph = TimingGraph("diamond", 2)
                graph.mark_input("a")
                graph.mark_input("b")
                graph.mark_output("z")
                graph.add_edge("a", "m", CanonicalForm(10.0, 0.5, np.array([0.2, 0.1]), 0.3))
                graph.add_edge("b", "m", CanonicalForm(8.0, 0.3, np.array([0.1, 0.2]), 0.2))
                graph.add_edge("m", "z", CanonicalForm(4.0, 0.1, np.array([0.05, 0.05]), 0.1))
                graph.add_edge("a", "z", CanonicalForm(12.0, 0.2, np.array([0.1, 0.0]), 0.15))
                return graph


            def main():
                graph = build_graph()
                warm_timer = load_incremental_timer(%r, graph=graph)
                fresh_timer = IncrementalTimer(build_graph())
                assert warm_timer.circuit_delay() == fresh_timer.circuit_delay()
                assert warm_timer.store_fallback_reason is None

                warm_mc = load_montecarlo_session(%r, graph=graph)
                fresh_mc = MonteCarloSession(
                    build_graph(), num_samples=128, seed=3, chunk_size=64
                )
                assert np.array_equal(
                    warm_mc.revalidate().samples, fresh_mc.revalidate().samples
                )


            if __name__ == "__main__":
                main()
            """
            % (SRC_DIR, str(tmp_path / "timer.npz"), str(tmp_path / "mc.npz"))
        )
    )
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert completed.returncode == 0, completed.stderr
    assert "Traceback" not in completed.stderr, completed.stderr
