"""Warm-start parity of whole :class:`DesignTimer` bundles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import StoreKeyError
from repro.experiments.config import ExperimentConfig
from repro.experiments.figure7 import build_multiplier_design, build_multiplier_module
from repro.hier.analysis import DesignTimer
from repro.hier.design import HierarchicalDesign, ModuleInstance
from repro.liberty.library import standard_library
from repro.model.extraction import extract_timing_model
from repro.timing.builder import build_timing_graph
from repro.variation.grid import Die


@pytest.fixture(scope="module")
def design_setup():
    """A characterized 4x4 multiplier design plus a swap candidate."""
    config = ExperimentConfig(monte_carlo_samples=400, monte_carlo_chunk=200)
    module = build_multiplier_module(bits=4, config=config)
    design = build_multiplier_design(module)
    library = standard_library()
    full_graph = build_timing_graph(
        module.netlist, library, module.placement, module.variation,
        name=module.netlist.name,
    )
    alternate = extract_timing_model(
        full_graph, module.variation, threshold=0.2, name="mult4_compressed"
    )
    return module, design, library, full_graph, alternate


@pytest.fixture
def saved_bundle(design_setup, tmp_path):
    """A fresh warm timer (delay + MC + one extraction session), saved."""
    module, design, library, full_graph, _unused = design_setup
    timer = DesignTimer(design)
    timer.circuit_delay()
    timer.revalidate_monte_carlo(num_samples=300, seed=1, library=library)
    timer.attach_module_source(
        design.instances[0].name, full_graph, module.variation
    )
    timer.save(tmp_path / "bundle")
    return timer, tmp_path / "bundle"


class TestBundleParity:
    def test_layout_on_disk(self, saved_bundle):
        _timer, root = saved_bundle
        assert (root / "design.npz").is_file()
        assert (root / "timer.npz").is_file()
        assert (root / "montecarlo.npz").is_file()
        assert len(list((root / "extraction").iterdir())) == 1

    def test_delay_and_monte_carlo_parity(self, design_setup, saved_bundle):
        _module, design, library, _graph, _alt = design_setup
        timer, root = saved_bundle
        loaded = DesignTimer.load(root, design, library=library)
        assert loaded.circuit_delay() == timer.circuit_delay()
        reference = timer.revalidate_monte_carlo(
            num_samples=300, seed=1, library=library
        )
        restored = loaded.revalidate_monte_carlo(
            num_samples=300, seed=1, library=library
        )
        assert np.array_equal(restored.samples, reference.samples)

    def test_post_load_swap_stays_bit_identical(self, design_setup, saved_bundle):
        """Edits after the restart flow through the ordinary journaled paths."""
        module, design, library, _graph, alternate = design_setup
        timer, root = saved_bundle
        loaded = DesignTimer.load(root, design, library=library)
        swapped = design.instances[0].name
        for session in (timer, loaded):
            session.swap_instance_model(
                swapped, alternate,
                netlist=module.netlist, placement=module.placement,
            )
        assert loaded.circuit_delay() == timer.circuit_delay()
        reference = timer.revalidate_monte_carlo(
            num_samples=300, seed=1, library=library
        )
        restored = loaded.revalidate_monte_carlo(
            num_samples=300, seed=1, library=library
        )
        assert np.array_equal(restored.samples, reference.samples)
        # Swaps update the shared (module-scoped) design object: revert so
        # the other tests see the original model.
        for session in (timer, loaded):
            session.swap_instance_model(
                swapped, module.model,
                netlist=module.netlist, placement=module.placement,
            )

    def test_extraction_sessions_restore_warm(self, design_setup, saved_bundle):
        _module, design, library, _graph, _alt = design_setup
        timer, root = saved_bundle
        loaded = DesignTimer.load(root, design, library=library)
        instance = design.instances[0].name
        original = timer.extraction_session(instance).extract(0.1)
        restored = loaded.extraction_session(instance).extract(0.1)
        assert restored.graph.num_edges == original.graph.num_edges
        for a, b in zip(original.graph.edges, restored.graph.edges):
            assert b.delay == a.delay


class TestBundleKeying:
    def test_foreign_design_name_rejected(self, design_setup, saved_bundle):
        _module, design, _library, _graph, _alt = design_setup
        _timer, root = saved_bundle
        foreign = HierarchicalDesign("not_the_design", Die(100.0, 100.0))
        with pytest.raises(StoreKeyError, match=design.name):
            DesignTimer.load(root, foreign)

    def test_mismatched_instance_set_rejected(self, design_setup, saved_bundle):
        module, design, _library, _graph, _alt = design_setup
        _timer, root = saved_bundle
        impostor = HierarchicalDesign(design.name, Die(100.0, 100.0))
        impostor.add_instance(
            ModuleInstance("unexpected", module.model, 0.0, 0.0)
        )
        with pytest.raises(StoreKeyError, match="instance set"):
            DesignTimer.load(root, impostor)
