"""Unit tests of the canonical linear delay form."""

import math

import numpy as np
import pytest

from repro.core.canonical import CanonicalForm


class TestConstruction:
    def test_default_is_zero(self):
        form = CanonicalForm()
        assert form.nominal == 0.0
        assert form.variance == 0.0
        assert form.num_locals == 0

    def test_constant(self):
        form = CanonicalForm.constant(3.5, num_locals=4)
        assert form.nominal == 3.5
        assert form.std == 0.0
        assert form.num_locals == 4

    def test_minus_infinity_is_not_finite(self):
        form = CanonicalForm.minus_infinity(2)
        assert not form.is_finite
        assert form.nominal == -math.inf

    def test_random_coefficient_stored_as_absolute(self):
        form = CanonicalForm(1.0, random_coeff=-2.0)
        assert form.random_coeff == 2.0

    def test_local_coefficients_are_copied_and_read_only(self):
        coeffs = np.array([1.0, 2.0])
        form = CanonicalForm(0.0, 0.0, coeffs, 0.0)
        coeffs[0] = 99.0
        assert form.local_coeffs[0] == 1.0
        with pytest.raises(ValueError):
            form.local_coeffs[0] = 5.0


class TestMoments:
    def test_variance_combines_all_components(self):
        form = CanonicalForm(10.0, 3.0, [4.0], 12.0)
        assert form.variance == pytest.approx(9.0 + 16.0 + 144.0)
        assert form.std == pytest.approx(13.0)

    def test_correlated_variance_excludes_random(self):
        form = CanonicalForm(10.0, 3.0, [4.0], 12.0)
        assert form.correlated_variance == pytest.approx(25.0)

    def test_mean_alias(self):
        form = CanonicalForm(7.25)
        assert form.mean == form.nominal == 7.25


class TestArithmetic:
    def test_add_sums_coefficients(self):
        a = CanonicalForm(1.0, 2.0, [1.0, 0.0], 3.0)
        b = CanonicalForm(4.0, 1.0, [2.0, 5.0], 4.0)
        c = a.add(b)
        assert c.nominal == 5.0
        assert c.global_coeff == 3.0
        assert np.allclose(c.local_coeffs, [3.0, 5.0])
        assert c.random_coeff == pytest.approx(5.0)  # hypot(3, 4)

    def test_add_broadcasts_shorter_local_vector(self):
        a = CanonicalForm(1.0, 0.0, [1.0], 0.0)
        b = CanonicalForm(1.0, 0.0, [1.0, 2.0, 3.0], 0.0)
        c = a + b
        assert np.allclose(c.local_coeffs, [2.0, 2.0, 3.0])

    def test_add_constant_shifts_mean_only(self):
        a = CanonicalForm(1.0, 2.0, [3.0], 4.0)
        b = a.add_constant(10.0)
        assert b.nominal == 11.0
        assert b.variance == a.variance

    def test_scalar_multiplication(self):
        a = CanonicalForm(2.0, 1.0, [2.0], 2.0)
        b = a * 3.0
        assert b.nominal == 6.0
        assert b.std == pytest.approx(3.0 * a.std)

    def test_negate_keeps_variance(self):
        a = CanonicalForm(2.0, 1.0, [2.0], 2.0)
        b = -a
        assert b.nominal == -2.0
        assert b.variance == pytest.approx(a.variance)

    def test_subtract_adds_random_variance(self):
        a = CanonicalForm(5.0, 0.0, None, 3.0)
        b = CanonicalForm(2.0, 0.0, None, 4.0)
        c = a - b
        assert c.nominal == 3.0
        assert c.std == pytest.approx(5.0)

    def test_operator_overloads_with_scalars(self):
        a = CanonicalForm(5.0)
        assert (a + 2.0).nominal == 7.0
        assert (2.0 + a).nominal == 7.0
        assert (a - 1.0).nominal == 4.0
        assert (3.0 * a).nominal == 15.0


class TestCovariance:
    def test_covariance_uses_shared_variables_only(self):
        a = CanonicalForm(0.0, 2.0, [1.0, 0.0], 5.0)
        b = CanonicalForm(0.0, 3.0, [4.0, 1.0], 7.0)
        assert a.covariance(b) == pytest.approx(2.0 * 3.0 + 1.0 * 4.0)

    def test_correlation_of_identical_correlated_forms_is_one(self):
        a = CanonicalForm(1.0, 2.0, [3.0], 0.0)
        assert a.correlation(a) == pytest.approx(1.0)

    def test_correlation_with_deterministic_form_is_zero(self):
        a = CanonicalForm(1.0, 2.0, [3.0], 0.0)
        b = CanonicalForm.constant(5.0, 1)
        assert a.correlation(b) == 0.0


class TestRemapLocals:
    def test_remap_preserves_mean_and_global(self):
        form = CanonicalForm(10.0, 2.0, [1.0, 2.0], 0.5)
        matrix = np.array([[1.0, 0.0, 0.0], [0.0, 1.0, 0.0]])
        remapped = form.remap_locals(matrix)
        assert remapped.nominal == 10.0
        assert remapped.global_coeff == 2.0
        assert remapped.num_locals == 3
        assert np.allclose(remapped.local_coeffs, [1.0, 2.0, 0.0])

    def test_remap_with_orthogonal_matrix_preserves_variance(self):
        rng = np.random.default_rng(3)
        matrix = np.linalg.qr(rng.standard_normal((4, 4)))[0]
        form = CanonicalForm(1.0, 0.5, rng.standard_normal(4), 0.25)
        remapped = form.remap_locals(matrix)
        assert remapped.variance == pytest.approx(form.variance)

    def test_remap_rejects_wrong_row_count(self):
        form = CanonicalForm(1.0, 0.0, [1.0, 2.0], 0.0)
        with pytest.raises(ValueError):
            form.remap_locals(np.zeros((3, 2)))

    def test_remap_rejects_non_matrix(self):
        form = CanonicalForm(1.0, 0.0, [1.0], 0.0)
        with pytest.raises(ValueError):
            form.remap_locals(np.zeros(3))


class TestSamplingAndDistribution:
    def test_sample_reproduces_linear_model(self):
        form = CanonicalForm(10.0, 2.0, [1.0, -1.0], 3.0)
        value = form.sample(0.5, np.array([1.0, 2.0]), -1.0)
        expected = 10.0 + 2.0 * 0.5 + 1.0 * 1.0 - 1.0 * 2.0 + 3.0 * -1.0
        assert value[0] == pytest.approx(expected)

    def test_sample_statistics_match_moments(self):
        rng = np.random.default_rng(11)
        form = CanonicalForm(50.0, 2.0, [1.5, 0.5], 1.0)
        n = 40000
        values = form.sample(
            rng.standard_normal(n), rng.standard_normal((2, n)), rng.standard_normal(n)
        )
        assert np.mean(values) == pytest.approx(form.nominal, rel=0.01)
        assert np.std(values) == pytest.approx(form.std, rel=0.03)

    def test_quantile_and_cdf_are_consistent(self):
        form = CanonicalForm(100.0, 5.0, [5.0], 5.0)
        q95 = form.quantile(0.95)
        assert float(form.cdf(q95)) == pytest.approx(0.95, abs=1e-9)

    def test_cdf_of_deterministic_form_is_step(self):
        form = CanonicalForm.constant(10.0)
        assert float(form.cdf(9.0)) == pytest.approx(0.0)
        assert float(form.cdf(11.0)) == pytest.approx(1.0)


class TestEqualityAndRepr:
    def test_equality_and_hash(self):
        a = CanonicalForm(1.0, 2.0, [3.0], 4.0)
        b = CanonicalForm(1.0, 2.0, [3.0], 4.0)
        assert a == b
        assert hash(a) == hash(b)

    def test_equality_broadcasts_trailing_zeros(self):
        a = CanonicalForm(1.0, 2.0, [3.0], 4.0)
        b = CanonicalForm(1.0, 2.0, [3.0, 0.0], 4.0)
        assert a == b

    def test_is_close(self):
        a = CanonicalForm(1.0, 2.0, [3.0], 4.0)
        b = CanonicalForm(1.0 + 1e-12, 2.0, [3.0], 4.0)
        assert a.is_close(b)

    def test_repr_mentions_moments(self):
        text = repr(CanonicalForm(1.5, 0.5, [0.5], 0.5))
        assert "nominal=1.5" in text
