"""Backend selection, fallback and registry tests.

Mirrors the ``resolve_workers`` suite shape (tests/parallel/test_pool.py):
the ``REPRO_BACKEND`` knob validates like ``REPRO_WORKERS`` (explicit
argument beats environment, unknown values raise naming the knob) and the
compiled tier degrades to numpy — never to an ImportError — when numba is
absent, with the reason recorded on every resolution surface.
"""

import sys

import pytest

from repro.core import batch, gaussian
from repro.core.backend import (
    BACKEND_ENV,
    BACKENDS,
    available_backends,
    get_kernel,
    registered_kernels,
    reset_backend_state,
    resolve_backend,
)
from repro.core.backend import kernels, registry


@pytest.fixture(autouse=True)
def _fresh_backend_state(monkeypatch):
    """Isolate every test from the process-cached numba probe."""
    monkeypatch.delenv(BACKEND_ENV, raising=False)
    reset_backend_state()
    yield
    reset_backend_state()


@pytest.fixture
def numba_absent(monkeypatch):
    """Simulate a container without numba (import raises ImportError)."""
    monkeypatch.setitem(sys.modules, "numba", None)
    reset_backend_state()


@pytest.fixture
def identity_jit(monkeypatch):
    """Run the pure-Python kernel bodies through the real numba dispatch."""
    monkeypatch.setattr(registry, "_NUMBA_STATE", ((lambda fn: fn), None))


class TestResolveBackend:
    def test_defaults_to_auto(self):
        resolved = resolve_backend()
        assert resolved.requested == "auto"
        assert resolved.backend in ("numpy", "numba")

    def test_numpy_request_never_falls_back(self):
        resolved = resolve_backend("numpy")
        assert resolved == resolve_backend("numpy")
        assert resolved.backend == "numpy"
        assert resolved.fallback_reason is None

    def test_environment_selects_the_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "numpy")
        assert resolve_backend().requested == "numpy"

    def test_explicit_backend_beats_the_environment(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "numba")
        resolved = resolve_backend("numpy")
        assert resolved.requested == "numpy"
        assert resolved.backend == "numpy"

    def test_bogus_environment_ignored_by_explicit_argument(self, monkeypatch):
        # The explicit argument does not even read the environment.
        monkeypatch.setenv(BACKEND_ENV, "bogus")
        assert resolve_backend("numpy").backend == "numpy"

    @pytest.mark.parametrize("value", ["bogus", "Numba", "1", ""])
    def test_bogus_environment_raises(self, monkeypatch, value):
        monkeypatch.setenv(BACKEND_ENV, value)
        with pytest.raises(ValueError, match=BACKEND_ENV):
            resolve_backend()

    @pytest.mark.parametrize("value", ["bogus", "Numba", ""])
    def test_bogus_explicit_backend_raises(self, value):
        with pytest.raises(ValueError, match="backend must be one of"):
            resolve_backend(value)

    def test_backends_tuple_is_the_contract(self):
        assert BACKENDS == ("auto", "numpy", "numba")


class TestNumbaAbsent:
    def test_numba_request_degrades_with_reason(self, numba_absent):
        resolved = resolve_backend("numba")
        assert resolved.requested == "numba"
        assert resolved.backend == "numpy"
        assert "numba" in resolved.fallback_reason
        assert "compiled" in resolved.fallback_reason  # names the extra

    def test_auto_degrades_with_reason(self, numba_absent):
        resolved = resolve_backend("auto")
        assert resolved.backend == "numpy"
        assert resolved.fallback_reason is not None

    def test_available_backends_reports_without_raising(self, numba_absent):
        report = available_backends()
        assert report["numpy"] == {"available": True, "reason": None}
        assert report["numba"]["available"] is False
        assert "numba" in report["numba"]["reason"]
        assert report["default"]["resolved"] == "numpy"

    def test_kernels_fall_back_to_numpy_implementations(self, numba_absent):
        bound = get_kernel("clark_max_into", "numba")
        assert bound.backend == "numpy"
        assert bound.function is batch.clark_max_into
        assert bound.fallback_reason is not None

    def test_fused_kernels_fall_back_to_inline_paths(self, numba_absent):
        for name in ("fold_levels", "mc_longest_paths", "criticality_chunk_terms"):
            bound = get_kernel(name, "numba")
            assert bound.backend == "numpy"
            assert bound.function is None  # caller runs its inline path


class TestRegistry:
    def test_default_kernels_registered(self):
        names = registered_kernels()
        for name in (
            "clark_max_into",
            "merge_max_with_validity_into",
            "normal_cdf_into",
            "normal_pdf_into",
            "fold_levels",
            "mc_longest_paths",
            "criticality_chunk_terms",
        ):
            assert name in names

    def test_unknown_kernel_raises_listing_registered(self):
        with pytest.raises(ValueError, match="clark_max_into"):
            get_kernel("no_such_kernel")

    def test_numpy_bindings_are_the_existing_kernels(self):
        assert get_kernel("normal_cdf_into", "numpy").function is (
            gaussian.normal_cdf_into
        )
        assert get_kernel("merge_max_with_validity_into", "numpy").function is (
            batch.merge_max_with_validity_into
        )

    def test_compiled_binding_caches_per_kernel(self, identity_jit):
        first = get_kernel("clark_max_into", "numba")
        second = get_kernel("clark_max_into", "numba")
        assert first.backend == "numba"
        assert first.function is kernels.clark_max_into_kernel
        assert second.function is first.function

    def test_reset_clears_compiled_cache(self, identity_jit):
        bound = get_kernel("clark_max_into", "numba")
        assert bound.backend == "numba"
        reset_backend_state()
        # With the probe reset, resolution re-probes the real numba (or
        # records its absence) instead of reusing the patched state.
        assert registry._NUMBA_STATE is None


class TestConsumerThreading:
    def test_explicit_numpy_ignores_bogus_environment(
        self, monkeypatch, tiny_graph
    ):
        from repro.timing.propagation import propagate_arrival_times_batch

        monkeypatch.setenv(BACKEND_ENV, "bogus")
        times = propagate_arrival_times_batch(tiny_graph, backend="numpy")
        assert times.valid.any()

    def test_default_backend_reads_the_environment(
        self, monkeypatch, tiny_graph
    ):
        from repro.timing.propagation import propagate_arrival_times_batch

        monkeypatch.setenv(BACKEND_ENV, "bogus")
        with pytest.raises(ValueError, match=BACKEND_ENV):
            propagate_arrival_times_batch(tiny_graph)

    def test_simulators_validate_the_backend(self, tiny_graph):
        from repro.montecarlo.flat import simulate_graph_delay

        with pytest.raises(ValueError, match="backend must be one of"):
            simulate_graph_delay(
                tiny_graph, num_samples=8, engine="levelized", backend="bogus"
            )
