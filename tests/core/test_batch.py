"""Unit and property tests of the structure-of-arrays batch engine."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batch import (
    CanonicalBatch,
    batch_covariance,
    batch_variance,
    clark_max_arrays,
    clark_max_reduce,
    merge_max_with_validity,
    tightness_arrays,
)
from repro.core.canonical import CanonicalForm
from repro.core.ops import (
    statistical_max,
    statistical_max_many,
    statistical_min,
    statistical_sum,
    tightness_probability,
)


def _random_forms(seed, count, num_locals=3):
    rng = np.random.default_rng(seed)
    return [
        CanonicalForm(
            rng.uniform(5, 50),
            rng.uniform(0, 2),
            rng.uniform(-1, 1, num_locals),
            rng.uniform(0, 2),
        )
        for _unused in range(count)
    ]


def _form_lists(max_locals: int = 3):
    coeff = st.floats(min_value=-5.0, max_value=5.0, allow_nan=False, allow_infinity=False)
    positive = st.floats(min_value=0.0, max_value=5.0, allow_nan=False, allow_infinity=False)
    forms = st.builds(
        CanonicalForm,
        st.floats(min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False),
        coeff,
        st.lists(coeff, min_size=0, max_size=max_locals),
        positive,
    )
    return st.lists(forms, min_size=1, max_size=12)


class TestRoundTrip:
    @given(_form_lists())
    @settings(max_examples=60, deadline=None)
    def test_from_forms_to_forms_is_identity(self, forms):
        # Local vectors of differing widths are padded; CanonicalForm
        # equality broadcasts the padding, so the round trip is exact on
        # every coefficient.  The private part is stored as a variance, so
        # subnormal random coefficients (< ~1e-150) underflow in the square
        # — the round trip is exact only above that floor.
        batch = CanonicalBatch.from_forms(forms)
        for original, restored in zip(forms, batch.to_forms()):
            assert restored.nominal == original.nominal
            assert restored.global_coeff == original.global_coeff
            padded = np.zeros(batch.num_locals)
            padded[: original.num_locals] = original.local_coeffs
            assert np.array_equal(restored.local_coeffs, padded)
            assert restored.random_coeff == pytest.approx(
                original.random_coeff, rel=1e-12, abs=1e-150
            )

    @given(_form_lists())
    @settings(max_examples=40, deadline=None)
    def test_component_arrays_match_forms(self, forms):
        batch = CanonicalBatch.from_forms(forms)
        for row, form in enumerate(forms):
            assert batch.nominal[row] == form.nominal
            assert batch.global_coeff[row] == form.global_coeff
            # Match the storage expression exactly (x * x and x ** 2 can
            # differ by one ulp: libm pow rounds differently than multiply).
            assert batch.random_var[row] == form.random_coeff * form.random_coeff
            padded = np.zeros(batch.num_locals)
            padded[: form.num_locals] = form.local_coeffs
            assert np.array_equal(batch.local_coeffs[row], padded)

    def test_component_constructor(self):
        batch = CanonicalBatch([1.0, 2.0], [0.5, 0.25], [[1.0, 2.0], [3.0, 4.0]], [4.0, 9.0])
        assert len(batch) == 2
        assert batch.num_locals == 2
        assert batch.form(0) == CanonicalForm(1.0, 0.5, [1.0, 2.0], 2.0)
        assert batch.form(1) == CanonicalForm(2.0, 0.25, [3.0, 4.0], 3.0)

    def test_zero_copy_wrap_shares_memory(self):
        mean = np.array([1.0, 2.0])
        corr = np.array([[0.5, 1.0], [0.25, 2.0]])
        randvar = np.array([0.0, 1.0])
        batch = CanonicalBatch.from_mean_corr_randvar(mean, corr, randvar)
        assert np.shares_memory(batch.nominal, mean)
        assert np.shares_memory(batch.corr, corr)
        assert np.shares_memory(batch.global_coeff, corr)
        assert np.shares_memory(batch.local_coeffs, corr)
        assert np.shares_memory(batch.random_var, randvar)

    def test_negative_random_var_rejected(self):
        with pytest.raises(ValueError):
            CanonicalBatch([0.0], [0.0], None, [-1.0])

    def test_indexing_and_gather(self):
        forms = _random_forms(0, 6)
        batch = CanonicalBatch.from_forms(forms)
        assert batch[2] == forms[2]
        sub = batch[1:4]
        assert isinstance(sub, CanonicalBatch)
        assert sub.to_forms() == forms[1:4]
        picked = batch.gather([4, 0])
        assert picked.to_forms() == [forms[4], forms[0]]

    def test_concatenate_pads_locals(self):
        a = CanonicalBatch.from_forms([CanonicalForm(1.0, 1.0, [1.0], 0.0)])
        b = CanonicalBatch.from_forms([CanonicalForm(2.0, 0.0, [1.0, 2.0, 3.0], 1.0)])
        joined = CanonicalBatch.concatenate([a, b])
        assert len(joined) == 2
        assert joined.num_locals == 3
        assert joined.form(0) == CanonicalForm(1.0, 1.0, [1.0, 0.0, 0.0], 0.0)


class TestElementwiseOps:
    @given(_form_lists(), st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_add_matches_object_sum(self, forms, seed):
        others = _random_forms(seed, len(forms))
        a = CanonicalBatch.from_forms(forms)
        b = CanonicalBatch.from_forms(others)
        summed = a.add(b)
        for row, (x, y) in enumerate(zip(forms, others)):
            assert summed.form(row).is_close(statistical_sum(x, y))

    def test_scale_negate_subtract_add_constant(self):
        forms = _random_forms(3, 8)
        batch = CanonicalBatch.from_forms(forms)
        scaled = batch.scale(2.5)
        negated = batch.negate()
        shifted = batch.add_constant(7.0)
        for row, form in enumerate(forms):
            assert scaled.form(row).is_close(form.scale(2.5))
            assert negated.form(row).is_close(form.negate())
            assert shifted.form(row).is_close(form.add_constant(7.0))
        factors = np.linspace(0.5, 2.0, len(forms))
        per_entry = batch.scale(factors)
        for row, form in enumerate(forms):
            assert per_entry.form(row).is_close(form.scale(factors[row]))
        diff = batch.subtract(CanonicalBatch.from_forms(forms[::-1]))
        for row, form in enumerate(forms):
            assert diff.form(row).is_close(form.subtract(forms[len(forms) - 1 - row]))

    def test_add_form_broadcasts(self):
        forms = _random_forms(4, 5)
        extra = CanonicalForm(3.0, 0.5, [0.1, 0.2, 0.3], 1.0)
        batch = CanonicalBatch.from_forms(forms).add_form(extra)
        for row, form in enumerate(forms):
            assert batch.form(row).is_close(form.add(extra))

    def test_variance_std_covariance_correlation(self):
        forms = _random_forms(5, 10)
        others = _random_forms(6, 10)
        a = CanonicalBatch.from_forms(forms)
        b = CanonicalBatch.from_forms(others)
        for row, (x, y) in enumerate(zip(forms, others)):
            assert a.variance[row] == pytest.approx(x.variance, rel=1e-12)
            assert a.std[row] == pytest.approx(x.std, rel=1e-12)
            assert a.covariance(b)[row] == pytest.approx(x.covariance(y), rel=1e-12)
            assert a.correlation(b)[row] == pytest.approx(x.correlation(y), rel=1e-12)

    def test_tightness_matches_object(self):
        forms = _random_forms(7, 12)
        others = _random_forms(8, 12)
        a = CanonicalBatch.from_forms(forms)
        b = CanonicalBatch.from_forms(others)
        tp = a.tightness(b)
        for row, (x, y) in enumerate(zip(forms, others)):
            assert tp[row] == pytest.approx(tightness_probability(x, y), abs=1e-12)

    def test_maximum_minimum_match_object(self):
        forms = _random_forms(9, 16)
        others = _random_forms(10, 16)
        a = CanonicalBatch.from_forms(forms)
        b = CanonicalBatch.from_forms(others)
        maxed = a.maximum(b)
        minned = a.minimum(b)
        for row, (x, y) in enumerate(zip(forms, others)):
            assert maxed.form(row).is_close(statistical_max(x, y), rtol=1e-9, atol=1e-9)
            assert minned.form(row).is_close(statistical_min(x, y), rtol=1e-9, atol=1e-9)


class TestReductions:
    def test_max_over_dominates_operands(self):
        forms = _random_forms(11, 33)
        result = CanonicalBatch.from_forms(forms).max_over()
        assert result.nominal >= max(form.nominal for form in forms) - 1e-9

    def test_max_over_single_entry(self):
        form = CanonicalForm(5.0, 1.0, [0.5], 2.0)
        assert CanonicalBatch.from_forms([form]).max_over() == form

    def test_max_over_empty_raises(self):
        with pytest.raises(ValueError):
            CanonicalBatch.from_forms([]).max_over()

    def test_max_over_matches_explicit_tree(self):
        forms = _random_forms(12, 8)
        batch = CanonicalBatch.from_forms(forms)
        # Manually reduce with the same pairing: i with i + n//2.
        level = forms
        while len(level) > 1:
            half = len(level) // 2
            merged = [
                statistical_max(level[i], level[half + i]) for i in range(half)
            ]
            if len(level) % 2:
                merged.append(level[-1])
            level = merged
        assert batch.max_over().is_close(level[0], rtol=1e-9, atol=1e-9)

    def test_min_over_bounded_by_operands(self):
        forms = _random_forms(13, 9)
        result = CanonicalBatch.from_forms(forms).min_over()
        assert result.nominal <= min(form.nominal for form in forms) + 1e-9

    def test_statistical_max_many_uses_tree(self):
        forms = _random_forms(14, 15)
        expected = CanonicalBatch.from_forms(forms).max_over()
        assert statistical_max_many(forms).is_close(expected)

    def test_statistical_max_many_drops_minus_infinity(self):
        forms = _random_forms(15, 4)
        with_identity = [CanonicalForm.minus_infinity(3)] + forms
        expected = CanonicalBatch.from_forms(forms).max_over()
        assert statistical_max_many(with_identity).is_close(expected)

    def test_statistical_max_many_against_monte_carlo(self):
        rng = np.random.default_rng(16)
        forms = _random_forms(16, 6, num_locals=2)
        result = statistical_max_many(forms)
        n = 150000
        xg = rng.standard_normal(n)
        xl = rng.standard_normal((2, n))
        sampled = np.stack([
            form.sample(xg, xl, rng.standard_normal(n)) for form in forms
        ])
        empirical = sampled.max(axis=0)
        assert result.nominal == pytest.approx(float(np.mean(empirical)), rel=0.01)
        assert result.std == pytest.approx(float(np.std(empirical)), rel=0.05)

    def test_clark_max_reduce_along_axis(self):
        rng = np.random.default_rng(17)
        mean = rng.uniform(0, 10, (5, 4))
        corr = rng.uniform(-1, 1, (5, 4, 3))
        randvar = rng.uniform(0, 1, (5, 4))
        red_mean, red_corr, red_randvar = clark_max_reduce(mean, corr, randvar, axis=0)
        assert red_mean.shape == (4,)
        assert red_corr.shape == (4, 3)
        assert red_randvar.shape == (4,)
        # Column j of the reduction equals reducing column j on its own.
        for j in range(4):
            m, c, r = clark_max_reduce(mean[:, j], corr[:, j], randvar[:, j])
            assert m == pytest.approx(red_mean[j], rel=1e-12)
            assert np.allclose(c, red_corr[j], rtol=1e-12)
            assert r == pytest.approx(red_randvar[j], rel=1e-12, abs=1e-12)


class TestRawKernels:
    def test_batch_variance_covariance(self):
        rng = np.random.default_rng(18)
        corr_a = rng.uniform(-1, 1, (7, 4))
        corr_b = rng.uniform(-1, 1, (7, 4))
        randvar = rng.uniform(0, 2, 7)
        assert np.allclose(
            batch_variance(corr_a, randvar),
            np.einsum("nk,nk->n", corr_a, corr_a) + randvar,
        )
        assert np.allclose(
            batch_covariance(corr_a, corr_b), np.einsum("nk,nk->n", corr_a, corr_b)
        )

    def test_tightness_arrays_degenerate(self):
        corr = np.array([[1.0, 0.5]])
        tp = tightness_arrays(
            np.array([3.0]), corr, np.array([0.0]),
            np.array([1.0]), corr, np.array([0.0]),
        )
        assert tp[0] == 1.0

    def test_merge_max_validity_combinations(self):
        mean_a = np.array([1.0, 5.0, 0.0, 0.0])
        mean_b = np.array([2.0, 0.0, 3.0, 0.0])
        corr_a = np.zeros((4, 1))
        corr_b = np.zeros((4, 1))
        randvar = np.zeros(4)
        valid_a = np.array([True, True, False, False])
        valid_b = np.array([True, False, True, False])
        mean, _corr, _randvar, valid = merge_max_with_validity(
            mean_a, corr_a, randvar, valid_a, mean_b, corr_b, randvar, valid_b
        )
        assert valid.tolist() == [True, True, True, False]
        assert mean[0] == pytest.approx(2.0)  # deterministic max
        assert mean[1] == pytest.approx(5.0)  # only a valid
        assert mean[2] == pytest.approx(3.0)  # only b valid

    def test_clark_max_arrays_commutative_moments(self):
        rng = np.random.default_rng(19)
        mean_a = rng.uniform(0, 10, 20)
        mean_b = rng.uniform(0, 10, 20)
        corr_a = rng.uniform(-1, 1, (20, 3))
        corr_b = rng.uniform(-1, 1, (20, 3))
        randvar_a = rng.uniform(0, 1, 20)
        randvar_b = rng.uniform(0, 1, 20)
        mean_ab, corr_ab, rv_ab = clark_max_arrays(
            mean_a, corr_a, randvar_a, mean_b, corr_b, randvar_b
        )
        mean_ba, corr_ba, rv_ba = clark_max_arrays(
            mean_b, corr_b, randvar_b, mean_a, corr_a, randvar_a
        )
        assert np.allclose(mean_ab, mean_ba, rtol=1e-9)
        var_ab = np.einsum("nk,nk->n", corr_ab, corr_ab) + rv_ab
        var_ba = np.einsum("nk,nk->n", corr_ba, corr_ba) + rv_ba
        assert np.allclose(var_ab, var_ba, rtol=1e-9, atol=1e-12)


class TestSampling:
    def test_sample_statistics_match_moments(self):
        forms = _random_forms(20, 5)
        batch = CanonicalBatch.from_forms(forms)
        samples = batch.sample(np.random.default_rng(21), 60000)
        assert samples.shape == (5, 60000)
        assert np.allclose(samples.mean(axis=1), batch.nominal, rtol=0.02)
        assert np.allclose(samples.std(axis=1), batch.std, rtol=0.05)

    def test_sample_preserves_correlation(self):
        a = CanonicalForm(0.0, 2.0, [1.0], 0.5)
        b = CanonicalForm(0.0, 2.0, [-1.0], 0.5)
        batch = CanonicalBatch.from_forms([a, b])
        samples = batch.sample(np.random.default_rng(22), 120000)
        empirical = float(np.corrcoef(samples)[0, 1])
        assert empirical == pytest.approx(a.correlation(b), abs=0.02)

    def test_sample_all_private_fast_path_matches_masked_formula(self):
        # Every entry has private variance, so sample() takes the
        # unmasked in-place path; it must consume the stream and combine
        # terms exactly like the masked gather/scatter formula.
        forms = [
            CanonicalForm(float(i), 1.0 + i, [0.5, -0.25 * i], 0.1 + 0.2 * i)
            for i in range(6)
        ]
        batch = CanonicalBatch.from_forms(forms)
        got = batch.sample(np.random.default_rng(31), 9)
        rng = np.random.default_rng(31)
        expected = batch._corr @ rng.standard_normal((batch.num_corr, 9))
        expected += batch._mean[:, np.newaxis]
        sigma = np.sqrt(np.maximum(batch._randvar, 0.0))
        mask = sigma > 0.0
        assert mask.all()
        noise = rng.standard_normal((int(mask.sum()), 9))
        expected[mask] += sigma[mask, np.newaxis] * noise
        assert np.array_equal(got, expected)

    def test_sample_at_matches_object_evaluation(self):
        forms = _random_forms(23, 4)
        batch = CanonicalBatch.from_forms(forms)
        rng = np.random.default_rng(24)
        xg = rng.standard_normal(50)
        xl = rng.standard_normal((3, 50))
        xr = rng.standard_normal((4, 50))
        values = batch.sample_at(xg, xl, xr)
        for row, form in enumerate(forms):
            expected = form.sample(xg, xl, xr[row])
            assert np.allclose(values[row], expected, rtol=1e-12, atol=1e-12)
