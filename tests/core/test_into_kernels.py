"""Bitwise parity of the allocation-free fold kernels.

The levelized fold reuses preallocated workspace buffers through
``clark_max_into`` / ``merge_max_with_validity_into``; these must replicate
the allocating reference kernels *bitwise* (not just to tolerance), because
the blocked all-pairs engine's parity contract with the dense engine rests
on every engine executing the identical floating-point expressions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.batch import (
    FoldWorkspace,
    clark_max_arrays,
    clark_max_into,
    merge_max_with_validity,
    merge_max_with_validity_into,
)


def _random_operands(rng, shape, k):
    mean = rng.normal(10.0, 3.0, size=shape)
    corr = rng.normal(0.0, 0.5, size=shape + (k,))
    randvar = rng.uniform(0.0, 0.4, size=shape)
    return mean, corr, randvar


def _with_degenerate_rows(rng, shape, k):
    """Operand pairs where a slice is exactly degenerate (b == a)."""
    mean_a, corr_a, randvar_a = _random_operands(rng, shape, k)
    mean_b, corr_b, randvar_b = _random_operands(rng, shape, k)
    half = shape[0] // 2
    mean_b[:half] = mean_a[:half] - rng.uniform(0.0, 2.0, size=(half,) + shape[1:])
    corr_b[:half] = corr_a[:half]
    randvar_b[:half] = randvar_a[:half]
    return (mean_a, corr_a, randvar_a), (mean_b, corr_b, randvar_b)


def _allocate_outputs(shape, k):
    return (
        np.empty(shape),
        np.empty(shape + (k,)),
        np.empty(shape),
    )


@pytest.mark.parametrize("shape,k", [((37,), 3), ((16, 9), 5), ((128,), 1)])
def test_clark_max_into_is_bitwise_identical(shape, k):
    rng = np.random.default_rng(101)
    a, b = _with_degenerate_rows(rng, shape, k)
    expected = clark_max_arrays(*a, *b)
    out = _allocate_outputs(shape, k)
    clark_max_into(*a, *b, *out, work=FoldWorkspace())
    for got, want in zip(out, expected):
        assert np.array_equal(got, want)


def test_clark_max_into_reused_workspace_stays_bitwise():
    # The same workspace serves different shapes back to back, as it does
    # across rounds of a level fold: earlier contents must never leak.
    rng = np.random.default_rng(7)
    work = FoldWorkspace()
    for shape, k in [((64,), 4), ((9,), 4), ((33,), 4)]:
        a, b = _with_degenerate_rows(rng, shape, k)
        expected = clark_max_arrays(*a, *b)
        out = _allocate_outputs(shape, k)
        clark_max_into(*a, *b, *out, work)
        for got, want in zip(out, expected):
            assert np.array_equal(got, want)


@pytest.mark.parametrize("pattern", ["all_valid", "mixed", "disjoint"])
def test_merge_with_validity_into_is_bitwise_identical(pattern):
    rng = np.random.default_rng(55)
    shape, k = (41,), 3
    a, b = _with_degenerate_rows(rng, shape, k)
    if pattern == "all_valid":
        valid_a = np.ones(shape, dtype=bool)
        valid_b = np.ones(shape, dtype=bool)
    elif pattern == "mixed":
        valid_a = rng.random(shape) < 0.7
        valid_b = rng.random(shape) < 0.7
    else:
        valid_a = np.arange(shape[0]) % 2 == 0
        valid_b = ~valid_a
    expected = merge_max_with_validity(*a, valid_a, *b, valid_b)
    out_mean, out_corr, out_randvar = _allocate_outputs(shape, k)
    out_valid = np.empty(shape, dtype=bool)
    merge_max_with_validity_into(
        *a, valid_a, *b, valid_b, out_mean, out_corr, out_randvar, out_valid,
        FoldWorkspace(),
    )
    for got, want in zip((out_mean, out_corr, out_randvar, out_valid), expected):
        assert np.array_equal(got, want)


def test_workspace_views_grow_and_are_reused():
    work = FoldWorkspace()
    small = work.view("buf", (10,))
    small.fill(3.0)
    # Growing reallocates; shrinking returns a prefix view of the same
    # backing store.
    big = work.view("buf", (100,))
    assert big.shape == (100,)
    again = work.view("buf", (10,))
    assert again.base is big.base
    # Distinct dtypes get distinct buffers even under one name.
    flags = work.view("buf", (10,), bool)
    assert flags.dtype == np.bool_
    assert work.nbytes >= 100 * 8 + 10


def test_workspace_nbytes_tracks_buffers():
    work = FoldWorkspace()
    assert work.nbytes == 0
    work.view("a", (128,))
    work.view("b", (64,), bool)
    assert work.nbytes == 128 * 8 + 64
