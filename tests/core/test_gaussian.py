"""Unit tests of the Gaussian helpers and Clark's moment formulas."""

import math

import numpy as np
import pytest
from scipy.stats import norm

from repro.core.gaussian import clark_moments, clark_theta, normal_cdf, normal_pdf


class TestStandardNormal:
    def test_pdf_matches_scipy(self):
        for x in (-3.0, -0.5, 0.0, 1.2, 4.0):
            assert normal_pdf(x) == pytest.approx(norm.pdf(x), rel=1e-12)

    def test_cdf_matches_scipy(self):
        for x in (-5.0, -1.0, 0.0, 0.7, 3.3):
            assert normal_cdf(x) == pytest.approx(norm.cdf(x), rel=1e-12)

    def test_cdf_limits(self):
        assert normal_cdf(-40.0) == pytest.approx(0.0, abs=1e-15)
        assert normal_cdf(40.0) == pytest.approx(1.0)


class TestClarkTheta:
    def test_independent_variables(self):
        assert clark_theta(9.0, 16.0, 0.0) == pytest.approx(5.0)

    def test_fully_correlated_clamps_to_zero(self):
        # var_a == var_b == cov (perfect correlation) plus round-off noise.
        assert clark_theta(4.0, 4.0, 4.0 + 1e-15) == 0.0


class TestClarkMoments:
    def test_degenerate_equal_operands(self):
        tp, mean, var = clark_moments(5.0, 4.0, 5.0, 4.0, 4.0)
        assert tp == 1.0
        assert mean == 5.0
        assert var == 4.0

    def test_degenerate_picks_larger_mean(self):
        tp, mean, var = clark_moments(3.0, 1.0, 7.0, 1.0, 1.0)
        assert tp == 0.0
        assert mean == 7.0
        assert var == 1.0

    def test_widely_separated_operands_return_dominant(self):
        tp, mean, var = clark_moments(100.0, 1.0, 0.0, 1.0, 0.0)
        assert tp == pytest.approx(1.0)
        assert mean == pytest.approx(100.0, rel=1e-6)
        assert var == pytest.approx(1.0, rel=1e-3)

    def test_symmetric_operands(self):
        # max of two iid N(0, 1): mean = 1/sqrt(pi), var = 1 - 1/pi.
        tp, mean, var = clark_moments(0.0, 1.0, 0.0, 1.0, 0.0)
        assert tp == pytest.approx(0.5)
        assert mean == pytest.approx(1.0 / math.sqrt(math.pi), rel=1e-9)
        assert var == pytest.approx(1.0 - 1.0 / math.pi, rel=1e-9)

    def test_against_monte_carlo(self):
        rng = np.random.default_rng(5)
        mean_a, var_a = 10.0, 4.0
        mean_b, var_b = 11.0, 9.0
        cov = 2.5
        covariance = np.array([[var_a, cov], [cov, var_b]])
        samples = rng.multivariate_normal([mean_a, mean_b], covariance, size=300000)
        empirical = samples.max(axis=1)
        tp, mean, var = clark_moments(mean_a, var_a, mean_b, var_b, cov)
        assert tp == pytest.approx(np.mean(samples[:, 0] >= samples[:, 1]), abs=0.01)
        assert mean == pytest.approx(float(np.mean(empirical)), rel=0.01)
        assert var == pytest.approx(float(np.var(empirical)), rel=0.03)

    def test_variance_never_negative(self):
        tp, mean, var = clark_moments(1.0, 1e-18, 1.0, 1e-18, 0.0)
        assert var >= 0.0
