"""Unit and property-based tests of the statistical sum/max operators."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.canonical import CanonicalForm
from repro.core.ops import (
    exceedance_probability,
    statistical_max,
    statistical_max_many,
    statistical_min,
    statistical_sum,
    tightness_probability,
)


def _finite_forms(max_locals: int = 3):
    """Hypothesis strategy generating bounded canonical forms."""
    coeff = st.floats(min_value=-5.0, max_value=5.0, allow_nan=False, allow_infinity=False)
    positive = st.floats(min_value=0.0, max_value=5.0, allow_nan=False, allow_infinity=False)
    return st.builds(
        CanonicalForm,
        st.floats(min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False),
        coeff,
        st.lists(coeff, min_size=max_locals, max_size=max_locals),
        positive,
    )


class TestSum:
    def test_sum_matches_add(self):
        a = CanonicalForm(1.0, 1.0, [1.0], 1.0)
        b = CanonicalForm(2.0, 0.5, [0.5], 2.0)
        assert statistical_sum(a, b) == a.add(b)

    @given(_finite_forms(), _finite_forms())
    @settings(max_examples=60, deadline=None)
    def test_sum_moments(self, a, b):
        c = statistical_sum(a, b)
        assert c.nominal == pytest.approx(a.nominal + b.nominal, rel=1e-9, abs=1e-9)
        expected_var = a.variance + b.variance + 2.0 * a.covariance(b)
        assert c.variance == pytest.approx(expected_var, rel=1e-9, abs=1e-9)


class TestTightnessProbability:
    def test_symmetric_case(self):
        a = CanonicalForm(10.0, 1.0, None, 1.0)
        b = CanonicalForm(10.0, 1.0, None, 1.0)
        assert tightness_probability(a, b) == pytest.approx(0.5)

    def test_dominant_operand(self):
        a = CanonicalForm(100.0, 1.0, None, 0.0)
        b = CanonicalForm(0.0, 1.0, None, 0.0)
        assert tightness_probability(a, b) == pytest.approx(1.0)
        assert tightness_probability(b, a) == pytest.approx(0.0)

    def test_identical_correlated_forms_degenerate(self):
        a = CanonicalForm(5.0, 2.0, [1.0], 0.0)
        assert tightness_probability(a, a) == 1.0

    def test_minus_infinity_never_wins(self):
        a = CanonicalForm(5.0, 1.0, None, 0.0)
        neg = CanonicalForm.minus_infinity()
        assert tightness_probability(a, neg) == 1.0
        assert tightness_probability(neg, a) == 0.0

    def test_exceedance_probability(self):
        a = CanonicalForm(10.0, 3.0, [4.0], 0.0)  # std 5
        assert exceedance_probability(a, 10.0) == pytest.approx(0.5)
        assert exceedance_probability(a, 0.0) == pytest.approx(0.9772, abs=1e-3)
        deterministic = CanonicalForm.constant(1.0)
        assert exceedance_probability(deterministic, 0.5) == 1.0
        assert exceedance_probability(deterministic, 1.5) == 0.0


class TestMax:
    def test_max_with_minus_infinity_is_identity(self):
        a = CanonicalForm(5.0, 1.0, [1.0], 1.0)
        neg = CanonicalForm.minus_infinity(1)
        assert statistical_max(a, neg) is a
        assert statistical_max(neg, a) is a

    def test_max_of_clearly_dominant_operand(self):
        a = CanonicalForm(100.0, 1.0, [1.0], 1.0)
        b = CanonicalForm(1.0, 1.0, [1.0], 1.0)
        c = statistical_max(a, b)
        assert c.nominal == pytest.approx(100.0, rel=1e-6)
        assert c.std == pytest.approx(a.std, rel=1e-3)

    def test_max_mean_exceeds_both_means_for_overlapping(self):
        a = CanonicalForm(10.0, 0.0, None, 2.0)
        b = CanonicalForm(10.0, 0.0, None, 2.0)
        c = statistical_max(a, b)
        assert c.nominal > 10.0

    def test_max_against_monte_carlo(self):
        rng = np.random.default_rng(17)
        a = CanonicalForm(20.0, 1.0, [2.0, 0.0], 1.0)
        b = CanonicalForm(21.0, 1.5, [0.0, 2.0], 1.5)
        c = statistical_max(a, b)
        n = 200000
        xg = rng.standard_normal(n)
        xl = rng.standard_normal((2, n))
        sa = a.sample(xg, xl, rng.standard_normal(n))
        sb = b.sample(xg, xl, rng.standard_normal(n))
        empirical = np.maximum(sa, sb)
        assert c.nominal == pytest.approx(float(np.mean(empirical)), rel=0.01)
        assert c.std == pytest.approx(float(np.std(empirical)), rel=0.05)

    def test_max_preserves_correlation_structure(self):
        # The result's global coefficient is the TP-weighted combination.
        a = CanonicalForm(10.0, 2.0, [1.0], 0.5)
        b = CanonicalForm(10.0, 1.0, [2.0], 0.5)
        c = statistical_max(a, b)
        assert 1.0 < c.global_coeff < 2.0
        assert c.local_coeffs[0] > 0.0

    @given(_finite_forms(), _finite_forms())
    @settings(max_examples=60, deadline=None)
    def test_max_mean_at_least_both_means(self, a, b):
        c = statistical_max(a, b)
        assert c.nominal >= max(a.nominal, b.nominal) - 1e-6

    @given(_finite_forms(), _finite_forms())
    @settings(max_examples=60, deadline=None)
    def test_max_is_commutative_in_moments(self, a, b):
        c1 = statistical_max(a, b)
        c2 = statistical_max(b, a)
        assert c1.nominal == pytest.approx(c2.nominal, rel=1e-6, abs=1e-6)
        assert c1.variance == pytest.approx(c2.variance, rel=1e-6, abs=1e-6)


class TestMinAndMany:
    def test_min_is_negated_max(self):
        a = CanonicalForm(10.0, 1.0, [1.0], 1.0)
        b = CanonicalForm(12.0, 1.0, [0.5], 1.0)
        c = statistical_min(a, b)
        assert c.nominal <= min(a.nominal, b.nominal) + 1e-9

    def test_max_many_requires_one_form(self):
        with pytest.raises(ValueError):
            statistical_max_many([])

    def test_max_many_single_form(self):
        a = CanonicalForm(3.0)
        assert statistical_max_many([a]) is a

    def test_max_many_dominant(self):
        forms = [CanonicalForm(float(value), 0.1, None, 0.1) for value in (1, 5, 42, 7)]
        result = statistical_max_many(forms)
        assert result.nominal == pytest.approx(42.0, rel=1e-3)
