"""Parity of the compiled kernel bodies against the numpy engines.

Two layers, both runnable without numba installed:

* **elementwise** — the pure-Python kernel bodies
  (:mod:`repro.core.backend.kernels`) against their vectorized numpy
  counterparts on randomized batches;
* **dispatch** — an identity ``jit`` patched into the registry runs those
  same bodies through the *real* ``backend="numba"`` dispatch of the
  propagation, Monte Carlo and criticality engines, compared end to end
  against ``backend="numpy"``.

The contract: 1e-9 for anything crossing a CDF or a contraction (the
compiled tier sums sequentially where BLAS/``erfc`` round differently),
**bitwise** for the Monte Carlo kernels (``+``/``max`` are exact).  The
generated 10^5-edge design runs only under a real numba (CI's
``backend-smoke`` with-numba leg); everything else runs everywhere.
"""

import numpy as np
import pytest

from repro.core import batch, gaussian
from repro.core.backend import kernels, registry
from repro.core.backend import reset_backend_state
from repro.core.canonical import CanonicalForm
from repro.model.criticality import compute_edge_criticalities
from repro.montecarlo.flat import simulate_graph_delay, simulate_io_delays
from repro.timing.propagation import (
    compute_slacks_batch,
    longest_path_to_outputs_batch,
    propagate_arrival_times_batch,
    propagate_required_times_batch,
)

RTOL = 1e-9
ATOL = 1e-9


def _numba_available() -> bool:
    try:
        import numba  # noqa: F401
    except ImportError:
        return False
    return True


@pytest.fixture
def identity_jit(monkeypatch):
    """Route ``backend="numba"`` through the pure-Python kernel bodies.

    Patches the registry's cached probe with an identity decorator so
    ``get_kernel`` binds (and the engines execute) the exact functions the
    real numba tier would compile — the full dispatch path minus the
    compiler.
    """
    reset_backend_state()
    monkeypatch.setattr(registry, "_NUMBA_STATE", ((lambda fn: fn), None))
    yield
    reset_backend_state()


def _random_batches(rng, n=257, width=5):
    def one():
        return (
            rng.normal(size=n) * 3.0,
            rng.normal(size=(n, width)) * 0.5,
            rng.uniform(0.0, 0.4, size=n),
        )

    return one(), one()


def _vertex_times_close(a, b, context):
    __tracebackhide__ = True
    assert np.array_equal(a.valid, b.valid), context
    mask = a.valid
    for field in ("mean", "corr", "randvar"):
        left = getattr(a, field)[mask]
        right = getattr(b, field)[mask]
        np.testing.assert_allclose(
            left, right, rtol=RTOL, atol=ATOL, err_msg=context + ":" + field
        )


class TestElementwiseKernels:
    def test_clark_max_matches_numpy(self):
        rng = np.random.default_rng(7)
        (ma, ca, ra), (mb, cb, rb) = _random_batches(rng)
        n, width = ca.shape
        out = [np.empty(n), np.empty((n, width)), np.empty(n)]
        ref = [np.empty(n), np.empty((n, width)), np.empty(n)]
        kernels.clark_max_into_kernel(ma, ca, ra, mb, cb, rb, *out)
        batch.clark_max_into(
            ma, ca, ra, mb, cb, rb, *ref, batch.FoldWorkspace()
        )
        for got, want in zip(out, ref):
            np.testing.assert_allclose(got, want, rtol=RTOL, atol=ATOL)

    def test_clark_max_degenerate_tie_is_exact(self):
        # Fully correlated identical operands (no private randvar): theta
        # is exactly 0, so the 0/1 tie rule returns the operand unchanged.
        mean = np.array([1.0, -2.0])
        corr = np.array([[0.5, 0.25], [0.0, 1.0]])
        randvar = np.zeros(2)
        out = [np.empty(2), np.empty((2, 2)), np.empty(2)]
        kernels.clark_max_into_kernel(
            mean, corr, randvar, mean, corr, randvar, *out
        )
        np.testing.assert_array_equal(out[0], mean)
        np.testing.assert_array_equal(out[1], corr)
        np.testing.assert_allclose(out[2], randvar, rtol=RTOL, atol=ATOL)

    def test_merge_with_validity_matches_numpy_bitwise(self):
        # The masking (which side is copied where) is pure selection, so
        # everything but the both-valid Clark entries must be bitwise.
        rng = np.random.default_rng(11)
        (ma, ca, ra), (mb, cb, rb) = _random_batches(rng)
        n, width = ca.shape
        va = rng.uniform(size=n) < 0.6
        vb = rng.uniform(size=n) < 0.6
        out = [np.empty(n), np.empty((n, width)), np.empty(n), np.empty(n, bool)]
        ref = [np.empty(n), np.empty((n, width)), np.empty(n), np.empty(n, bool)]
        kernels.merge_max_with_validity_into_kernel(
            ma, ca, ra, va, mb, cb, rb, vb, *out
        )
        batch.merge_max_with_validity_into(
            ma, ca, ra, va, mb, cb, rb, vb, *ref, batch.FoldWorkspace()
        )
        np.testing.assert_array_equal(out[3], ref[3])
        both = va & vb
        for got, want in zip(out[:3], ref[:3]):
            np.testing.assert_allclose(got, want, rtol=RTOL, atol=ATOL)
            np.testing.assert_array_equal(got[~both], want[~both])

    def test_normal_cdf_matches_numpy(self):
        x = np.linspace(-8.0, 8.0, 1001)
        got = np.empty_like(x)
        want = np.empty_like(x)
        kernels.normal_cdf_into_kernel(x, got)
        gaussian.normal_cdf_into(x, want)
        # erfc-based vs ndtr: same function, different polynomial — the
        # shared 1e-9 contract, not bitwise.
        np.testing.assert_allclose(got, want, rtol=RTOL, atol=ATOL)

    def test_normal_pdf_matches_numpy(self):
        x = np.linspace(-8.0, 8.0, 1001)
        got = np.empty_like(x)
        want = np.empty_like(x)
        kernels.normal_pdf_into_kernel(x, got)
        gaussian.normal_pdf_into(x, want)
        # Same operation sequence, but ``math.exp`` and numpy's vector
        # ``exp`` round differently by up to 1 ulp — the 1e-9 contract.
        np.testing.assert_allclose(got, want, rtol=RTOL, atol=ATOL)


class TestDispatchParity:
    """End-to-end ``backend="numba"`` vs ``backend="numpy"`` (identity jit)."""

    def test_forward_fold(self, identity_jit, parity_module):
        graph, _ = parity_module
        _vertex_times_close(
            propagate_arrival_times_batch(graph, backend="numba"),
            propagate_arrival_times_batch(graph, backend="numpy"),
            "arrivals",
        )

    def test_backward_folds(self, identity_jit, parity_module):
        graph, _ = parity_module
        _vertex_times_close(
            longest_path_to_outputs_batch(graph, backend="numba"),
            longest_path_to_outputs_batch(graph, backend="numpy"),
            "to_outputs",
        )
        constraint = CanonicalForm.constant(1000.0, graph.num_locals)
        required = {vertex: constraint for vertex in graph.outputs}
        _vertex_times_close(
            propagate_required_times_batch(graph, required, backend="numba"),
            propagate_required_times_batch(graph, required, backend="numpy"),
            "required",
        )

    def test_slacks(self, identity_jit, parity_module):
        graph, _ = parity_module
        constraint = CanonicalForm.constant(1000.0, graph.num_locals)
        _vertex_times_close(
            compute_slacks_batch(graph, constraint, backend="numba"),
            compute_slacks_batch(graph, constraint, backend="numpy"),
            "slacks",
        )

    def test_monte_carlo_delay_is_bitwise(self, identity_jit, parity_module):
        graph, _ = parity_module
        compiled = simulate_graph_delay(
            graph, num_samples=384, seed=3, engine="levelized", backend="numba"
        )
        reference = simulate_graph_delay(
            graph, num_samples=384, seed=3, engine="levelized", backend="numpy"
        )
        np.testing.assert_array_equal(compiled.samples, reference.samples)

    def test_monte_carlo_io_moments_are_bitwise(
        self, identity_jit, parity_module
    ):
        graph, _ = parity_module
        compiled = simulate_io_delays(
            graph, num_samples=384, seed=5, engine="levelized", backend="numba"
        )
        reference = simulate_io_delays(
            graph, num_samples=384, seed=5, engine="levelized", backend="numpy"
        )
        np.testing.assert_array_equal(compiled.valid, reference.valid)
        np.testing.assert_array_equal(
            compiled.means, reference.means
        )
        np.testing.assert_array_equal(compiled.stds, reference.stds)

    def test_criticality_contraction(self, identity_jit, parity_module):
        graph, _ = parity_module
        compiled = compute_edge_criticalities(
            graph, engine="batch", backend="numba"
        )
        reference = compute_edge_criticalities(
            graph, engine="batch", backend="numpy"
        )
        assert set(compiled.max_criticality) == set(reference.max_criticality)
        for edge_id, want in reference.max_criticality.items():
            assert compiled.max_criticality[edge_id] == pytest.approx(
                want, rel=RTOL, abs=ATOL
            )


@pytest.mark.skipif(
    not _numba_available(), reason="needs a real numba (compiled extra)"
)
class TestCompiledLargeDesign:
    """The 10^5-edge acceptance parity, compiled tier only."""

    def test_generated_design_parity(self):
        from repro.netlist.generators import design_for_edge_count
        from repro.timing.builder import synthetic_timing_graph

        reset_backend_state()
        netlist = design_for_edge_count("pipeline", 100_000, seed=13)
        graph = synthetic_timing_graph(netlist, seed=13)
        _vertex_times_close(
            propagate_arrival_times_batch(graph, backend="numba"),
            propagate_arrival_times_batch(graph, backend="numpy"),
            "arrivals@1e5",
        )
        compiled = simulate_graph_delay(
            graph, num_samples=64, seed=9, engine="levelized", backend="numba"
        )
        reference = simulate_graph_delay(
            graph, num_samples=64, seed=9, engine="levelized", backend="numpy"
        )
        np.testing.assert_array_equal(compiled.samples, reference.samples)
