"""Tests of covariance/correlation helpers over canonical forms."""

import numpy as np
import pytest

from repro.core.canonical import CanonicalForm
from repro.core.correlation import (
    correlation,
    correlation_matrix,
    covariance,
    covariance_matrix,
)


@pytest.fixture
def forms():
    return [
        CanonicalForm(10.0, 1.0, [2.0, 0.0], 1.0),
        CanonicalForm(12.0, 1.0, [0.0, 2.0], 0.5),
        CanonicalForm(8.0, 0.0, [1.0, 1.0], 2.0),
    ]


def test_covariance_is_symmetric(forms):
    assert covariance(forms[0], forms[1]) == covariance(forms[1], forms[0])


def test_covariance_matrix_diagonal_holds_variances(forms):
    matrix = covariance_matrix(forms)
    for index, form in enumerate(forms):
        assert matrix[index, index] == pytest.approx(form.variance)


def test_covariance_matrix_off_diagonal(forms):
    matrix = covariance_matrix(forms)
    assert matrix[0, 1] == pytest.approx(forms[0].covariance(forms[1]))
    assert np.allclose(matrix, matrix.T)


def test_covariance_matrix_is_positive_semidefinite(forms):
    matrix = covariance_matrix(forms)
    eigenvalues = np.linalg.eigvalsh(matrix)
    assert eigenvalues.min() >= -1e-9


def test_correlation_matrix_has_unit_diagonal(forms):
    matrix = correlation_matrix(forms)
    assert np.allclose(np.diag(matrix), 1.0)
    assert np.all(matrix <= 1.0 + 1e-12)
    assert np.all(matrix >= -1.0 - 1e-12)


def test_correlation_with_deterministic_form_is_zero(forms):
    deterministic = CanonicalForm.constant(1.0, 2)
    assert correlation(forms[0], deterministic) == 0.0
    matrix = correlation_matrix([forms[0], deterministic])
    assert matrix[0, 1] == 0.0
    assert matrix[1, 1] == 1.0


def test_sampled_correlation_matches_analytical(forms):
    rng = np.random.default_rng(23)
    n = 200000
    xg = rng.standard_normal(n)
    xl = rng.standard_normal((2, n))
    sampled = [
        form.sample(xg, xl, rng.standard_normal(n)) for form in forms
    ]
    empirical = np.corrcoef(np.vstack(sampled))
    analytical = correlation_matrix(forms)
    assert np.allclose(empirical, analytical, atol=0.02)
