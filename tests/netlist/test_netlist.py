"""Tests of the netlist data model."""

import pytest

from repro.errors import NetlistError
from repro.netlist.netlist import Gate, Netlist


class TestGate:
    def test_function_uppercased(self):
        gate = Gate("u1", "nand", ("a", "b"), "y")
        assert gate.function == "NAND"
        assert gate.num_inputs == 2

    def test_no_inputs_rejected(self):
        with pytest.raises(NetlistError):
            Gate("u1", "AND", (), "y")


class TestNetlistConstruction:
    def test_duplicate_gate_name_rejected(self, tiny_netlist):
        with pytest.raises(NetlistError):
            tiny_netlist.add_gate(Gate("u1", "AND", ("a", "b"), "other"))

    def test_duplicate_driver_rejected(self, tiny_netlist):
        with pytest.raises(NetlistError):
            tiny_netlist.add_gate(Gate("u9", "AND", ("a", "b"), "n1"))

    def test_driving_primary_input_rejected(self, tiny_netlist):
        with pytest.raises(NetlistError):
            tiny_netlist.add_gate(Gate("u9", "AND", ("n1", "n2"), "a"))

    def test_duplicate_primary_ports_rejected(self):
        with pytest.raises(NetlistError):
            Netlist("bad", ["a", "a"], ["z"])
        with pytest.raises(NetlistError):
            Netlist("bad", ["a"], ["z", "z"])


class TestAccessors:
    def test_counts(self, tiny_netlist):
        assert tiny_netlist.num_gates == 5
        assert tiny_netlist.num_connections == 9
        assert len(tiny_netlist) == 5
        assert len(tiny_netlist.nets) == 3 + 5

    def test_driver_and_fanout(self, tiny_netlist):
        assert tiny_netlist.driver("a") is None
        assert tiny_netlist.driver("n1").name == "u1"
        fanout_names = {gate.name for gate in tiny_netlist.fanout("n1")}
        assert fanout_names == {"u3", "u4"}
        assert tiny_netlist.fanout_count("b") == 2

    def test_gate_lookup(self, tiny_netlist):
        assert tiny_netlist.gate("u3").function == "AND"
        with pytest.raises(NetlistError):
            tiny_netlist.gate("nope")

    def test_function_histogram(self, tiny_netlist):
        histogram = tiny_netlist.function_histogram()
        assert histogram["NAND"] == 1
        assert sum(histogram.values()) == 5


class TestStructuralAnalysis:
    def test_validate_passes_for_good_netlist(self, tiny_netlist):
        tiny_netlist.validate()

    def test_validate_detects_missing_driver(self):
        netlist = Netlist("bad", ["a"], ["z"], [Gate("u1", "AND", ("a", "ghost"), "z")])
        with pytest.raises(NetlistError):
            netlist.validate()

    def test_validate_detects_undriven_output(self):
        netlist = Netlist("bad", ["a"], ["z"], [Gate("u1", "INV", ("a",), "n1")])
        with pytest.raises(NetlistError):
            netlist.validate()

    def test_validate_detects_dangling_net(self):
        gates = [Gate("u1", "INV", ("a",), "n1"), Gate("u2", "INV", ("a",), "z")]
        netlist = Netlist("bad", ["a"], ["z"], gates)
        with pytest.raises(NetlistError):
            netlist.validate()

    def test_validate_detects_cycle(self):
        gates = [
            Gate("u1", "AND", ("a", "n2"), "n1"),
            Gate("u2", "AND", ("n1", "a"), "n2"),
            Gate("u3", "OR", ("n1", "n2"), "z"),
        ]
        netlist = Netlist("bad", ["a"], ["z"], gates)
        with pytest.raises(NetlistError):
            netlist.validate()

    def test_topological_order_respects_dependencies(self, tiny_netlist):
        order = [gate.name for gate in tiny_netlist.topological_gate_order()]
        assert order.index("u1") < order.index("u3")
        assert order.index("u2") < order.index("u3")
        assert order.index("u3") < order.index("u5")

    def test_logic_depth(self, tiny_netlist):
        assert tiny_netlist.logic_depth() == 3


class TestRenamed:
    def test_renamed_prefixes_everything(self, tiny_netlist):
        renamed = tiny_netlist.renamed("top/")
        assert renamed.primary_inputs == ("top/a", "top/b", "top/c")
        assert renamed.primary_outputs == ("top/z",)
        assert renamed.gate("top/u1").inputs == ("top/a", "top/b")
        renamed.validate()

    def test_renamed_preserves_structure(self, tiny_netlist):
        renamed = tiny_netlist.renamed("x_")
        assert renamed.num_gates == tiny_netlist.num_gates
        assert renamed.num_connections == tiny_netlist.num_connections
        assert renamed.logic_depth() == tiny_netlist.logic_depth()
