"""Tests of the ISCAS85 surrogate suite."""

import pytest

from repro.netlist.iscas85 import (
    ISCAS85_SPECS,
    available_benchmarks,
    iscas85_surrogate,
)


class TestSpecs:
    def test_all_ten_benchmarks_present(self):
        assert len(ISCAS85_SPECS) == 10
        assert set(available_benchmarks()) == set(ISCAS85_SPECS)

    def test_benchmarks_sorted_by_size(self):
        names = available_benchmarks()
        sizes = [ISCAS85_SPECS[name].num_gates for name in names]
        assert sizes == sorted(sizes)

    def test_table1_graph_sizes(self):
        # The Eo / Vo columns of Table I follow from the published statistics.
        expected = {
            "c432": (336, 196),
            "c499": (408, 243),
            "c880": (729, 443),
            "c1355": (1064, 587),
            "c1908": (1498, 913),
            "c2670": (2076, 1426),
            "c3540": (2939, 1719),
            "c5315": (4386, 2485),
            "c6288": (4800, 2448),
            "c7552": (6144, 3719),
        }
        for name, (edges, vertices) in expected.items():
            spec = ISCAS85_SPECS[name]
            assert spec.timing_graph_edges == edges
            assert spec.timing_graph_vertices == vertices


class TestSurrogates:
    @pytest.mark.parametrize("name", ["c432", "c499", "c880", "c1355"])
    def test_surrogate_matches_spec_exactly(self, name):
        spec = ISCAS85_SPECS[name]
        netlist = iscas85_surrogate(name)
        netlist.validate()
        assert netlist.num_gates == spec.num_gates
        assert netlist.num_connections == spec.num_connections
        assert len(netlist.primary_inputs) == spec.num_inputs
        assert len(netlist.primary_outputs) >= spec.num_outputs

    def test_surrogate_is_deterministic(self):
        a = iscas85_surrogate("c432")
        b = iscas85_surrogate("c432")
        assert [gate.inputs for gate in a.gates] == [gate.inputs for gate in b.gates]

    def test_custom_seed_changes_structure(self):
        a = iscas85_surrogate("c432")
        b = iscas85_surrogate("c432", seed=99)
        assert [gate.inputs for gate in a.gates] != [gate.inputs for gate in b.gates]

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            iscas85_surrogate("c9999")

    def test_structural_c6288_is_multiplier(self):
        multiplier = iscas85_surrogate("c6288", structural=True)
        assert len(multiplier.primary_inputs) == 32
        assert len(multiplier.primary_outputs) == 32

    def test_structural_only_for_c6288(self):
        with pytest.raises(ValueError):
            iscas85_surrogate("c432", structural=True)

    def test_depth_in_iscas_range(self):
        netlist = iscas85_surrogate("c880")
        assert 10 <= netlist.logic_depth() <= 60
