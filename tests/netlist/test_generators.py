"""Tests of the synthetic circuit generators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NetlistError
from repro.netlist.generators import (
    carry_select_adder,
    layered_random_circuit,
    ripple_carry_adder,
)


class TestLayeredRandomCircuit:
    def test_exact_sizes(self):
        netlist = layered_random_circuit("r", 10, 4, 100, 230, seed=3)
        assert len(netlist.primary_inputs) == 10
        assert netlist.num_gates == 100
        assert netlist.num_connections == 230
        netlist.validate()

    def test_deterministic_for_same_seed(self):
        a = layered_random_circuit("r", 8, 3, 50, 110, seed=42)
        b = layered_random_circuit("r", 8, 3, 50, 110, seed=42)
        assert [gate.inputs for gate in a.gates] == [gate.inputs for gate in b.gates]

    def test_different_seeds_differ(self):
        a = layered_random_circuit("r", 8, 3, 50, 110, seed=1)
        b = layered_random_circuit("r", 8, 3, 50, 110, seed=2)
        assert [gate.inputs for gate in a.gates] != [gate.inputs for gate in b.gates]

    def test_depth_close_to_target(self):
        netlist = layered_random_circuit("r", 16, 8, 400, 800, seed=5, depth=20)
        assert netlist.logic_depth() <= 28  # target plus a small repair margin
        assert netlist.logic_depth() >= 10

    def test_default_connections(self):
        netlist = layered_random_circuit("r", 5, 2, 30, seed=1)
        assert netlist.num_connections == 60

    def test_all_nets_used(self):
        netlist = layered_random_circuit("r", 12, 6, 80, 170, seed=9)
        outputs = set(netlist.primary_outputs)
        for net in netlist.nets:
            assert netlist.fanout_count(net) > 0 or net in outputs

    def test_invalid_arguments(self):
        with pytest.raises(NetlistError):
            layered_random_circuit("r", 0, 1, 10)
        with pytest.raises(NetlistError):
            layered_random_circuit("r", 2, 11, 10)
        with pytest.raises(NetlistError):
            layered_random_circuit("r", 2, 1, 10, 5)
        with pytest.raises(NetlistError):
            layered_random_circuit("r", 2, 1, 10, 1000)
        with pytest.raises(NetlistError):
            layered_random_circuit("r", 2, 1, 10, 20, far_edge_probability=2.0)

    @given(
        st.integers(min_value=2, max_value=12),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=8, max_value=80),
        st.integers(min_value=0, max_value=10000),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_valid_and_exact(self, inputs, outputs, gates, seed):
        outputs = min(outputs, gates)
        connections = 2 * gates + (seed % gates)
        netlist = layered_random_circuit(
            "prop", inputs, outputs, gates, connections, seed=seed
        )
        netlist.validate()
        assert netlist.num_gates == gates
        assert netlist.num_connections == connections
        assert len(netlist.primary_inputs) == inputs


class TestArithmeticGenerators:
    def test_ripple_carry_adder_structure(self):
        adder = ripple_carry_adder(4)
        assert len(adder.primary_inputs) == 9  # 2 * 4 + carry-in
        assert len(adder.primary_outputs) == 5  # 4 sums + carry-out
        assert adder.num_gates == 4 * 5
        adder.validate()

    def test_ripple_carry_adder_without_carry_in(self):
        adder = ripple_carry_adder(4, with_carry_in=False)
        assert len(adder.primary_inputs) == 8
        adder.validate()

    def test_ripple_depth_grows_linearly(self):
        assert ripple_carry_adder(8).logic_depth() > ripple_carry_adder(3).logic_depth()

    def test_invalid_bits(self):
        with pytest.raises(NetlistError):
            ripple_carry_adder(0)
        with pytest.raises(NetlistError):
            carry_select_adder(0)

    def test_carry_select_adder(self):
        adder = carry_select_adder(8, block=4)
        adder.validate()
        assert len(adder.primary_outputs) == 9
        # Carry-select trades area for (structural) speed: more gates than ripple.
        assert adder.num_gates > ripple_carry_adder(8).num_gates
