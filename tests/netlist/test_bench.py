"""Tests of the ISCAS85 .bench parser and writer."""

import pytest

from repro.errors import BenchFormatError
from repro.netlist.bench import parse_bench, parse_bench_file, write_bench
from repro.netlist.generators import ripple_carry_adder

C17 = """
# c17 benchmark (ISCAS85)
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)

OUTPUT(22)
OUTPUT(23)

10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
"""


class TestParser:
    def test_parse_c17(self):
        netlist = parse_bench(C17, "c17")
        assert netlist.name == "c17"
        assert len(netlist.primary_inputs) == 5
        assert len(netlist.primary_outputs) == 2
        assert netlist.num_gates == 6
        assert netlist.num_connections == 12
        assert netlist.logic_depth() == 3

    def test_parse_not_and_buf_aliases(self):
        text = "INPUT(a)\nOUTPUT(z)\nn = NOT(a)\nz = BUFF(n)\n"
        netlist = parse_bench(text)
        assert netlist.gate("n").function == "INV"
        assert netlist.gate("z").function == "BUF"

    def test_comments_and_blank_lines_ignored(self):
        text = "# header\n\nINPUT(a)\nOUTPUT(z)\n z = NOT(a)  # inline comment\n"
        netlist = parse_bench(text)
        assert netlist.num_gates == 1

    def test_unknown_function_rejected(self):
        with pytest.raises(BenchFormatError):
            parse_bench("INPUT(a)\nOUTPUT(z)\nz = MAJ3(a, a, a)\n")

    def test_dff_rejected(self):
        with pytest.raises(BenchFormatError):
            parse_bench("INPUT(a)\nOUTPUT(z)\nz = DFF(a)\n")

    def test_garbage_line_rejected(self):
        with pytest.raises(BenchFormatError):
            parse_bench("INPUT(a)\nOUTPUT(z)\nthis is not bench\nz = NOT(a)\n")

    def test_missing_inputs_rejected(self):
        with pytest.raises(BenchFormatError):
            parse_bench("OUTPUT(z)\nz = NOT(z2)\n")

    def test_missing_outputs_rejected(self):
        with pytest.raises(BenchFormatError):
            parse_bench("INPUT(a)\na2 = NOT(a)\n")

    def test_empty_operands_rejected(self):
        with pytest.raises(BenchFormatError):
            parse_bench("INPUT(a)\nOUTPUT(z)\nz = AND()\n")

    def test_parse_file(self, tmp_path):
        path = tmp_path / "c17.bench"
        path.write_text(C17)
        netlist = parse_bench_file(path)
        assert netlist.name == "c17"
        assert netlist.num_gates == 6


class TestWriter:
    def test_roundtrip_preserves_structure(self):
        original = ripple_carry_adder(3)
        text = write_bench(original)
        parsed = parse_bench(text, original.name)
        assert parsed.num_gates == original.num_gates
        assert parsed.num_connections == original.num_connections
        assert parsed.primary_inputs == original.primary_inputs
        assert parsed.primary_outputs == original.primary_outputs
        assert parsed.logic_depth() == original.logic_depth()

    def test_writer_uses_classic_spellings(self):
        text = "INPUT(a)\nOUTPUT(z)\nn = NOT(a)\nz = BUFF(n)\n"
        rendered = write_bench(parse_bench(text))
        assert "NOT(" in rendered
        assert "BUFF(" in rendered
        assert "INV(" not in rendered
