"""Tests of the scalable synthetic families and generator edge cases."""

import pytest

from repro.errors import NetlistError
from repro.netlist.generators import (
    _MAX_FANIN,
    deep_pipeline_circuit,
    design_for_edge_count,
    layered_random_circuit,
    mesh_circuit,
    ripple_carry_adder,
    tiled_circuit,
)


class TestDeepPipeline:
    def test_exact_sizes(self):
        netlist = deep_pipeline_circuit("p", width=8, stages=5, fanin=3, seed=2)
        assert len(netlist.primary_inputs) == 8
        assert len(netlist.primary_outputs) == 8
        assert netlist.num_gates == 8 * 5
        assert netlist.num_connections == 8 * 5 * 3
        netlist.validate()

    def test_every_rank_net_has_fanout(self):
        netlist = deep_pipeline_circuit("p", width=6, stages=7, seed=4)
        outputs = set(netlist.primary_outputs)
        for net in netlist.nets:
            assert netlist.fanout_count(net) > 0 or net in outputs

    def test_deterministic_for_same_seed(self):
        a = deep_pipeline_circuit("p", 10, 4, seed=11)
        b = deep_pipeline_circuit("p", 10, 4, seed=11)
        assert [gate.inputs for gate in a.gates] == [gate.inputs for gate in b.gates]
        c = deep_pipeline_circuit("p", 10, 4, seed=12)
        assert [gate.inputs for gate in a.gates] != [gate.inputs for gate in c.gates]

    def test_unit_fanin_and_unit_width(self):
        chain = deep_pipeline_circuit("p", width=1, stages=9, fanin=1)
        chain.validate()
        assert chain.num_connections == 9
        assert chain.logic_depth() == 9

    def test_invalid_arguments(self):
        with pytest.raises(NetlistError):
            deep_pipeline_circuit("p", 0, 3)
        with pytest.raises(NetlistError):
            deep_pipeline_circuit("p", 4, 0)
        with pytest.raises(NetlistError):
            deep_pipeline_circuit("p", 4, 3, fanin=0)
        with pytest.raises(NetlistError):
            deep_pipeline_circuit("p", 2, 3, fanin=3)  # fanin > width
        with pytest.raises(NetlistError):
            deep_pipeline_circuit("p", 4, 3, tap_probability=1.5)


class TestMesh:
    def test_exact_sizes(self):
        netlist = mesh_circuit("m", rows=5, cols=7)
        assert netlist.num_gates == 5 * 7
        assert netlist.num_connections == 2 * 5 * 7
        # North border + west border feed the mesh.
        assert len(netlist.primary_inputs) == 5 + 7
        # Bottom row + right column, corner counted once.
        assert len(netlist.primary_outputs) == 5 + 7 - 1
        netlist.validate()

    def test_single_cell(self):
        netlist = mesh_circuit("m", rows=1, cols=1)
        netlist.validate()
        assert netlist.num_gates == 1
        assert netlist.num_connections == 2

    def test_deterministic(self):
        a = mesh_circuit("m", 3, 4, seed=1)
        b = mesh_circuit("m", 3, 4, seed=1)
        assert [gate.inputs for gate in a.gates] == [gate.inputs for gate in b.gates]

    def test_invalid_arguments(self):
        with pytest.raises(NetlistError):
            mesh_circuit("m", 0, 3)
        with pytest.raises(NetlistError):
            mesh_circuit("m", 3, 0)


class TestTiled:
    def test_adder_tiling_exact_edges(self):
        template = ripple_carry_adder(4, name="tile")
        netlist = tiled_circuit("t", tile_rows=3, tile_cols=2, tile="adder", tile_size=4)
        assert netlist.num_gates == 6 * template.num_gates
        assert netlist.num_connections == 6 * template.num_connections
        netlist.validate()

    def test_random_tiling_valid(self):
        netlist = tiled_circuit(
            "t", tile_rows=2, tile_cols=2, tile="random", tile_size=3, seed=5
        )
        netlist.validate()
        assert netlist.num_gates > 0

    def test_deterministic_for_same_seed(self):
        a = tiled_circuit("t", 2, 2, tile="random", tile_size=3, seed=9)
        b = tiled_circuit("t", 2, 2, tile="random", tile_size=3, seed=9)
        assert [gate.inputs for gate in a.gates] == [gate.inputs for gate in b.gates]

    def test_no_dangling_gate_outputs(self):
        netlist = tiled_circuit("t", 3, 3, tile="adder", tile_size=2, seed=1)
        outputs = set(netlist.primary_outputs)
        for gate in netlist.gates:
            assert netlist.fanout_count(gate.output) > 0 or gate.output in outputs

    def test_invalid_arguments(self):
        with pytest.raises(NetlistError):
            tiled_circuit("t", 0, 1)
        with pytest.raises(NetlistError):
            tiled_circuit("t", 1, 1, tile="nonsense")


class TestDesignForEdgeCount:
    @pytest.mark.parametrize(
        "family", ["pipeline", "mesh", "tiled_adder", "tiled_random", "random"]
    )
    def test_hits_target_within_tolerance(self, family):
        target = 10_000
        netlist = design_for_edge_count(family, target, seed=3)
        netlist.validate()
        assert abs(netlist.num_connections - target) <= 0.1 * target

    def test_random_family_is_exact(self):
        netlist = design_for_edge_count("random", 5_000, seed=1)
        assert netlist.num_connections == 5_000

    def test_deterministic(self):
        a = design_for_edge_count("pipeline", 2_000, seed=7)
        b = design_for_edge_count("pipeline", 2_000, seed=7)
        assert [gate.inputs for gate in a.gates] == [gate.inputs for gate in b.gates]

    def test_invalid_arguments(self):
        with pytest.raises(NetlistError):
            design_for_edge_count("pipeline", 0)
        with pytest.raises(NetlistError):
            design_for_edge_count("unknown_family", 1000)


class TestLayeredRandomEdgeCases:
    def test_minimum_fanin_one_connection_per_gate(self):
        netlist = layered_random_circuit("r", 4, 2, 30, 30, seed=2)
        netlist.validate()
        assert netlist.num_connections == 30
        assert all(gate.num_inputs >= 1 for gate in netlist.gates)

    def test_maximum_fanin_saturates_every_gate(self):
        gates = 20
        netlist = layered_random_circuit(
            "r", 6, 3, gates, gates * _MAX_FANIN, seed=4
        )
        netlist.validate()
        assert netlist.num_connections == gates * _MAX_FANIN
        assert all(gate.num_inputs == _MAX_FANIN for gate in netlist.gates)

    def test_single_layer_depth(self):
        netlist = layered_random_circuit("r", 8, 4, 25, 50, seed=6, depth=1)
        netlist.validate()
        # The repair pass may deepen a few paths, but the bulk stays flat.
        assert netlist.logic_depth() <= 5

    def test_repair_preserves_exact_counts(self):
        # Configurations with many outputs force dangling-net repair and
        # primary-output promotion; sizes must survive both.
        for seed in range(5):
            netlist = layered_random_circuit("r", 5, 15, 15, 31, seed=seed)
            netlist.validate()
            assert netlist.num_gates == 15
            assert netlist.num_connections == 31
            dangling = [
                net
                for net in netlist.nets
                if netlist.fanout_count(net) == 0
                and net not in set(netlist.primary_outputs)
            ]
            assert dangling == []

    def test_repair_is_seed_reproducible(self):
        a = layered_random_circuit("r", 5, 15, 15, 31, seed=13)
        b = layered_random_circuit("r", 5, 15, 15, 31, seed=13)
        assert [gate.inputs for gate in a.gates] == [gate.inputs for gate in b.gates]
        assert a.primary_outputs == b.primary_outputs
