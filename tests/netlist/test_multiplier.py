"""Tests of the array multiplier generator."""

import pytest

from repro.errors import NetlistError
from repro.netlist.multiplier import array_multiplier


class TestArrayMultiplier:
    def test_port_counts(self):
        multiplier = array_multiplier(4)
        assert len(multiplier.primary_inputs) == 8
        assert len(multiplier.primary_outputs) == 8
        multiplier.validate()

    def test_gate_count_scales_quadratically(self):
        small = array_multiplier(4)
        large = array_multiplier(8)
        assert large.num_gates > 3 * small.num_gates

    def test_depth_has_long_carry_chains(self):
        multiplier = array_multiplier(8)
        # An 8x8 carry-propagate array has depth well above 4x its operand width.
        assert multiplier.logic_depth() > 30

    def test_sixteen_bit_size_is_c6288_like(self):
        multiplier = array_multiplier(16)
        assert 1200 <= multiplier.num_gates <= 3000
        assert len(multiplier.primary_inputs) == 32
        assert len(multiplier.primary_outputs) == 32
        multiplier.validate()

    def test_output_names_are_product_bits(self):
        multiplier = array_multiplier(4)
        assert multiplier.primary_outputs == tuple("P%d" % i for i in range(8))

    def test_minimum_width(self):
        with pytest.raises(NetlistError):
            array_multiplier(1)

    def test_deterministic(self):
        a = array_multiplier(4)
        b = array_multiplier(4)
        assert [gate.inputs for gate in a.gates] == [gate.inputs for gate in b.gates]

    def test_all_partial_products_present(self):
        multiplier = array_multiplier(4)
        and_gates = [gate for gate in multiplier.gates if gate.name.find("_ppa_") >= 0]
        assert len(and_gates) == 16
