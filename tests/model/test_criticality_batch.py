"""Property-based parity suite of the batched criticality engine.

The edge-chunked engine of :mod:`repro.model.criticality` shares its
floating-point expressions with the one-edge-at-a-time scalar reference,
so on *any* module the two must agree to 1e-9 — asserted here on
hypothesis-randomized layered DAGs, including the degenerate corners the
shared tie rule exists for (zero-variance delays, exactly tied maxima,
single-input/single-output modules), and after randomized retime bursts
driven through the incremental updater.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.canonical import CanonicalForm
from repro.model.criticality import (
    AUTO_BATCH_MIN_CRITICALITY_EDGES,
    compute_edge_criticalities,
    edge_criticality_batch,
    edge_criticality_matrix,
    edge_criticality_tensor,
    update_edge_criticalities,
)
from repro.timing.allpairs import AllPairsSession, AllPairsTiming
from repro.timing.graph import TimingGraph

PARITY = 1e-9
NUM_LOCALS = 2


def _build_graph(
    seed,
    num_inputs,
    num_outputs,
    num_internal,
    zero_variance=False,
    with_tie=False,
):
    """A random layered DAG with ``num_inputs``/``num_outputs`` designated.

    Every non-input vertex receives 1-3 fanin edges from topologically
    earlier non-output vertices, so each output is reachable while some
    inputs (and internal vertices) may dangle — which exercises the
    validity masking of both engines.  ``zero_variance`` makes every delay
    deterministic (the all-degenerate corner); ``with_tie`` duplicates one
    edge so a pair maximum is attained identically twice.
    """
    rng = np.random.default_rng(seed)
    graph = TimingGraph("prop%d" % seed, NUM_LOCALS)
    inputs = ["i%d" % position for position in range(num_inputs)]
    outputs = ["o%d" % position for position in range(num_outputs)]
    internal = ["v%d" % position for position in range(num_internal)]
    for name in inputs:
        graph.mark_input(name)
    for name in outputs:
        graph.mark_output(name)
    sources = inputs + internal  # outputs stay pure sinks

    def _delay():
        if zero_variance:
            return CanonicalForm(
                float(rng.uniform(1.0, 20.0)), 0.0, [0.0] * NUM_LOCALS, 0.0
            )
        return CanonicalForm(
            float(rng.uniform(1.0, 20.0)),
            float(rng.uniform(0.0, 1.5)),
            [float(value) for value in rng.uniform(-1.0, 1.0, NUM_LOCALS)],
            float(rng.uniform(0.0, 1.5)),
        )

    for position, name in enumerate(internal + outputs):
        limit = num_inputs + min(position, num_internal)
        for _unused in range(int(rng.integers(1, 4))):
            graph.add_edge(sources[int(rng.integers(0, limit))], name, _delay())
    if with_tie:
        edge = graph.edges[int(rng.integers(0, graph.num_edges))]
        graph.add_edge(edge.source, edge.sink, edge.delay)
    return graph


def _assert_results_close(reference, candidate):
    assert reference.max_criticality.keys() == candidate.max_criticality.keys()
    for edge_id, value in reference.max_criticality.items():
        assert abs(value - candidate.max_criticality[edge_id]) <= PARITY, (
            edge_id,
            value,
            candidate.max_criticality[edge_id],
        )


def _assert_argmax_attains(graph, analysis, result):
    """The reported argmax pair evaluates back to the reported maximum."""
    for edge in graph.edges:
        i, j = result.argmax_pairs[edge.edge_id]
        value = result.max_criticality[edge.edge_id]
        if i < 0:
            assert value == 0.0
            continue
        matrix = edge_criticality_matrix(analysis, edge)
        assert abs(matrix[i, j] - value) <= PARITY
        assert value >= matrix.max() - PARITY


class TestRandomizedParity:
    @given(
        seed=st.integers(min_value=0, max_value=10 ** 6),
        num_inputs=st.integers(min_value=1, max_value=4),
        num_outputs=st.integers(min_value=1, max_value=3),
        num_internal=st.integers(min_value=0, max_value=8),
        zero_variance=st.booleans(),
        with_tie=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_batch_matches_scalar(
        self, seed, num_inputs, num_outputs, num_internal, zero_variance, with_tie
    ):
        graph = _build_graph(
            seed, num_inputs, num_outputs, num_internal, zero_variance, with_tie
        )
        analysis = AllPairsTiming.analyze(graph)
        scalar = compute_edge_criticalities(graph, analysis, engine="scalar")
        batch = compute_edge_criticalities(graph, analysis, engine="batch")
        assert scalar.engine == "scalar"
        assert batch.engine == "batch"
        _assert_results_close(scalar, batch)
        _assert_argmax_attains(graph, analysis, scalar)
        _assert_argmax_attains(graph, analysis, batch)

    @given(
        seed=st.integers(min_value=0, max_value=10 ** 6),
        num_inputs=st.integers(min_value=1, max_value=3),
        num_outputs=st.integers(min_value=1, max_value=3),
        num_internal=st.integers(min_value=2, max_value=8),
        zero_variance=st.booleans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_tensor_rows_match_matrices(
        self, seed, num_inputs, num_outputs, num_internal, zero_variance
    ):
        graph = _build_graph(
            seed, num_inputs, num_outputs, num_internal, zero_variance
        )
        analysis = AllPairsTiming.analyze(graph)
        tensor = edge_criticality_tensor(analysis, graph.edges)
        assert tensor.shape == (
            graph.num_edges,
            analysis.num_inputs,
            analysis.num_outputs,
        )
        for row, edge in enumerate(graph.edges):
            np.testing.assert_allclose(
                tensor[row],
                edge_criticality_matrix(analysis, edge),
                atol=PARITY,
                rtol=0.0,
            )

    @given(
        seed=st.integers(min_value=0, max_value=10 ** 6),
        num_internal=st.integers(min_value=2, max_value=8),
        burst=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=10 ** 6),
                st.floats(min_value=0.5, max_value=2.0),
            ),
            min_size=1,
            max_size=6,
        ),
    )
    @settings(max_examples=25, deadline=None)
    def test_retime_burst_incremental_parity(self, seed, num_internal, burst):
        graph = _build_graph(seed, 3, 2, num_internal)
        session = AllPairsSession(graph)
        result = compute_edge_criticalities(graph, session.state)
        for edge_pick, factor in burst:
            edge = graph.edges[edge_pick % graph.num_edges]
            graph.replace_edge_delay(edge, edge.delay.scale(factor))
            update = session.refresh()
            result = update_edge_criticalities(
                graph, session.state, result, update
            )
        reference = compute_edge_criticalities(
            graph, AllPairsTiming.analyze(graph), engine="scalar"
        )
        _assert_results_close(reference, result)

    @given(seed=st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=15, deadline=None)
    def test_single_input_single_output(self, seed):
        graph = _build_graph(seed, 1, 1, 4)
        analysis = AllPairsTiming.analyze(graph)
        scalar = compute_edge_criticalities(graph, analysis, engine="scalar")
        batch = compute_edge_criticalities(graph, analysis, engine="batch")
        _assert_results_close(scalar, batch)


class TestDegenerateEdges:
    def test_zero_variance_chain_is_exactly_one(self):
        """Deterministic delays: the whole chain ties at criticality 1.0."""
        graph = TimingGraph("chain", NUM_LOCALS)
        graph.mark_input("a")
        graph.mark_output("z")
        constant = CanonicalForm(10.0, 0.0, [0.0] * NUM_LOCALS, 0.0)
        graph.add_edge("a", "m", constant)
        graph.add_edge("m", "z", constant)
        analysis = AllPairsTiming.analyze(graph)
        for engine in ("scalar", "batch"):
            result = compute_edge_criticalities(graph, analysis, engine=engine)
            assert all(
                value == 1.0 for value in result.max_criticality.values()
            ), engine

    def test_tied_parallel_paths_both_fully_critical(self):
        """Two identical deterministic branches: both tie at exactly 1.0."""
        graph = TimingGraph("tied", NUM_LOCALS)
        graph.mark_input("a")
        graph.mark_output("z")
        constant = CanonicalForm(7.0, 0.0, [0.0] * NUM_LOCALS, 0.0)
        for branch in ("u", "v"):
            graph.add_edge("a", branch, constant)
            graph.add_edge(branch, "z", constant)
        analysis = AllPairsTiming.analyze(graph)
        for engine in ("scalar", "batch"):
            result = compute_edge_criticalities(graph, analysis, engine=engine)
            assert all(
                value == 1.0 for value in result.max_criticality.values()
            ), engine

    def test_dangling_edge_has_zero_criticality(self):
        """An edge on no input-to-output path scores 0 in both engines."""
        graph = TimingGraph("dangle", NUM_LOCALS)
        graph.mark_input("a")
        graph.mark_output("z")
        form = CanonicalForm(5.0, 0.5, [0.1] * NUM_LOCALS, 0.2)
        graph.add_edge("a", "z", form)
        graph.add_edge("orphan", "leaf", form)  # reaches no output
        analysis = AllPairsTiming.analyze(graph)
        for engine in ("scalar", "batch"):
            result = compute_edge_criticalities(graph, analysis, engine=engine)
            dangling = [
                edge.edge_id
                for edge in graph.edges
                if edge.source == "orphan"
            ]
            assert result.max_criticality[dangling[0]] == 0.0
            # The pair space is non-empty, so the argmax is a real (if
            # all-zero) pair — (-1, -1) is reserved for empty pair spaces.
            assert result.argmax_pairs[dangling[0]] != (-1, -1)


class TestEngineSelection:
    def test_auto_uses_scalar_below_threshold(self):
        graph = _build_graph(3, 2, 2, 3)
        assert graph.num_edges < AUTO_BATCH_MIN_CRITICALITY_EDGES
        result = compute_edge_criticalities(graph)
        assert result.engine == "scalar"

    def test_auto_uses_batch_above_threshold(self):
        graph = _build_graph(5, 4, 3, 40)
        while graph.num_edges < AUTO_BATCH_MIN_CRITICALITY_EDGES:
            graph.add_edge(
                "i0", "v0", CanonicalForm(1.0, 0.1, [0.0] * NUM_LOCALS, 0.1)
            )
        result = compute_edge_criticalities(graph)
        assert result.engine == "batch"

    def test_unknown_engine_raises(self):
        graph = _build_graph(1, 1, 1, 1)
        with pytest.raises(ValueError):
            compute_edge_criticalities(graph, engine="vectorised")

    def test_chunking_is_invariant(self):
        """Any chunk size yields the same result as one big chunk."""
        graph = _build_graph(11, 3, 3, 10)
        analysis = AllPairsTiming.analyze(graph)
        whole = edge_criticality_batch(analysis)
        for chunk_pairs in (1, 7, 64, 1 << 20):
            chunked = edge_criticality_batch(analysis, chunk_pairs=chunk_pairs)
            assert chunked.max_criticality == whole.max_criticality
            assert chunked.argmax_pairs == whole.argmax_pairs

    def test_nonpositive_chunk_raises(self):
        graph = _build_graph(13, 2, 2, 4)
        analysis = AllPairsTiming.analyze(graph)
        with pytest.raises(ValueError):
            edge_criticality_batch(analysis, chunk_pairs=0)


@pytest.fixture(scope="module")
def c432_module():
    from repro.liberty.library import standard_library
    from repro.netlist.iscas85 import iscas85_surrogate
    from repro.placement.placer import place_netlist
    from repro.timing.builder import build_timing_graph, default_variation_for

    netlist = iscas85_surrogate("c432")
    library = standard_library()
    placement = place_netlist(netlist, library)
    variation = default_variation_for(netlist, placement)
    return build_timing_graph(netlist, library, placement, variation)


class TestDenseEditSwitch:
    """Regression: a dense mid-graph retime on the reconvergent c432 must
    flip the incremental updater to a batched full recompute and match the
    session-driven from-scratch result bit for bit (the switch *is* a
    from-scratch batched pass over the refreshed tensors)."""

    def _widest_mid_edge(self, graph, analysis):
        arrays = analysis.arrays
        reaching = analysis.arrival_valid.sum(axis=1)
        reached = analysis.to_output_valid.sum(axis=1)
        return max(
            graph.edges,
            key=lambda edge: int(
                reaching[arrays.edge_source[arrays.edge_rows[edge.edge_id]]]
            )
            * int(reached[arrays.edge_sink[arrays.edge_rows[edge.edge_id]]]),
        )

    def test_dense_retime_switches_to_batch_and_stays_exact(self, c432_module):
        graph = c432_module.copy()
        session = AllPairsSession(graph)
        previous = compute_edge_criticalities(graph, session.state)

        edge = self._widest_mid_edge(graph, session.state)
        graph.replace_edge_delay(edge, edge.delay.scale(1.2))
        update = session.refresh()
        assert update.mode == "incremental"

        updated = update_edge_criticalities(
            graph, session.state, previous, update
        )
        assert updated.engine == "batch"  # the auto-switch fired

        reference = compute_edge_criticalities(
            graph, session.state, engine="batch"
        )
        assert updated.max_criticality == reference.max_criticality
        assert updated.argmax_pairs == reference.argmax_pairs

    def test_sparse_retime_stays_incremental(self, c432_module):
        graph = c432_module.copy()
        session = AllPairsSession(graph)
        previous = compute_edge_criticalities(graph, session.state)

        edge = graph.fanout_edges(graph.inputs[0])[0]
        graph.replace_edge_delay(edge, edge.delay.scale(1.01))
        update = session.refresh()
        updated = update_edge_criticalities(
            graph, session.state, previous, update
        )
        assert updated.engine == "incremental"

        reference = compute_edge_criticalities(
            graph, session.state, engine="scalar"
        )
        _assert_results_close(reference, updated)


class TestEmptyPairSpace:
    """Regression: no primary I/O pairs must yield an empty result, not a
    numpy raise (the all-zero result keeps histogram/threshold consumers
    total on degenerate modules)."""

    def _edge_only_graph(self):
        graph = TimingGraph("noio", NUM_LOCALS)
        graph.add_edge(
            "a", "b", CanonicalForm(4.0, 0.2, [0.1] * NUM_LOCALS, 0.1)
        )
        return graph

    def test_no_inputs_or_outputs_yields_zeroes(self):
        graph = self._edge_only_graph()
        result = compute_edge_criticalities(graph)
        assert result.max_criticality == {
            edge.edge_id: 0.0 for edge in graph.edges
        }
        assert all(pair == (-1, -1) for pair in result.argmax_pairs.values())

    def test_no_outputs_yields_zeroes(self):
        graph = self._edge_only_graph()
        graph.mark_input("a")
        result = compute_edge_criticalities(graph)
        assert set(result.max_criticality.values()) == {0.0}

    def test_empty_result_stays_total(self):
        graph = self._edge_only_graph()
        result = compute_edge_criticalities(graph)
        assert result.below(0.5) == {
            edge.edge_id: 0.0 for edge in graph.edges
        }
        counts, bin_edges = result.histogram(bins=4)
        assert counts.sum() == graph.num_edges
        assert bin_edges[0] == 0.0
        assert result.values().shape == (graph.num_edges,)

    def test_edgeless_graph_with_pairs(self):
        graph = TimingGraph("bare", NUM_LOCALS)
        graph.mark_input("a")
        graph.mark_output("b")
        graph.add_edge("a", "b", CanonicalForm(1.0, 0.0, [0.0] * NUM_LOCALS, 0.0))
        graph.remove_edge(graph.edges[0])
        result = compute_edge_criticalities(graph)
        assert result.max_criticality == {}
        assert result.values().shape == (0,)
        assert result.below(1.0) == {}


class TestChunkSizer:
    def test_auto_chunk_edges_is_corr_aware(self):
        from repro.model.criticality import auto_chunk_edges

        narrow = auto_chunk_edges(200, 100, 0, chunk_pairs=1 << 19)
        wide = auto_chunk_edges(200, 100, 1000, chunk_pairs=1 << 19)
        assert narrow > wide >= 1
        # The per-edge float cost I*O + (I + O)*K bounds the chunk exactly.
        per_edge = 200 * 100 + 300 * 1000
        assert wide == max(1, (1 << 19) // per_edge)

    def test_auto_chunk_edges_never_degenerates(self):
        from repro.model.criticality import auto_chunk_edges

        # Extreme pair spaces and budgets always land on a usable chunk.
        assert auto_chunk_edges(10 ** 4, 10 ** 4, 10 ** 4, chunk_pairs=1) == 1
        assert auto_chunk_edges(0, 0, 0, chunk_pairs=1 << 19) == 1 << 19
        assert auto_chunk_edges(1, 1, 0, chunk_pairs=7) == 7
        with pytest.raises(ValueError):
            auto_chunk_edges(10, 10, 0, chunk_pairs=0)

    def test_chunk_pairs_env_override(self, monkeypatch):
        from repro.model.criticality import (
            CRITICALITY_CHUNK_PAIRS,
            criticality_chunk_pairs,
        )

        assert criticality_chunk_pairs() == CRITICALITY_CHUNK_PAIRS
        monkeypatch.setenv("REPRO_CRITICALITY_CHUNK_PAIRS", "4096")
        assert criticality_chunk_pairs() == 4096
        monkeypatch.setenv("REPRO_CRITICALITY_CHUNK_PAIRS", "-1")
        with pytest.raises(ValueError):
            criticality_chunk_pairs()
        monkeypatch.setenv("REPRO_CRITICALITY_CHUNK_PAIRS", "wide")
        with pytest.raises(ValueError):
            criticality_chunk_pairs()

    def test_tiny_chunk_budget_keeps_parity(self, monkeypatch):
        # A one-edge chunk still reproduces the default-chunk result.
        graph = _build_graph(77, 4, 3, 20)
        analysis = AllPairsTiming.analyze(graph)
        reference = edge_criticality_batch(analysis)
        monkeypatch.setenv("REPRO_CRITICALITY_CHUNK_PAIRS", "1")
        tiny = edge_criticality_batch(analysis)
        _assert_results_close(reference, tiny)
