"""Tests of timing-model JSON serialization."""

import json

import numpy as np
import pytest

from repro.errors import ModelExtractionError
from repro.model.criticality import (
    compute_edge_criticalities,
    update_edge_criticalities,
)
from repro.model.extraction import extract_timing_model
from repro.model.serialization import (
    criticality_from_dict,
    criticality_to_dict,
    load_criticality,
    load_timing_model,
    save_criticality,
    save_timing_model,
    timing_model_from_dict,
    timing_model_to_dict,
)
from repro.timing.allpairs import AllPairsSession


@pytest.fixture
def model(random_graph_and_variation):
    graph, variation = random_graph_and_variation
    return extract_timing_model(graph, variation, threshold=0.05)


class TestRoundTrip:
    def test_dict_roundtrip_preserves_structure(self, model):
        rebuilt = timing_model_from_dict(timing_model_to_dict(model))
        assert rebuilt.name == model.name
        assert rebuilt.inputs == model.inputs
        assert rebuilt.outputs == model.outputs
        assert rebuilt.graph.num_edges == model.graph.num_edges
        assert rebuilt.graph.num_vertices == model.graph.num_vertices
        assert rebuilt.stats == model.stats

    def test_dict_roundtrip_preserves_delays(self, model):
        rebuilt = timing_model_from_dict(timing_model_to_dict(model))
        for original, copy in zip(model.graph.edges, rebuilt.graph.edges):
            assert copy.source == original.source
            assert copy.sink == original.sink
            assert copy.delay.is_close(original.delay)

    def test_dict_roundtrip_preserves_variation_metadata(self, model):
        rebuilt = timing_model_from_dict(timing_model_to_dict(model))
        assert rebuilt.variation.sigma_fraction == pytest.approx(model.variation.sigma_fraction)
        assert rebuilt.variation.num_grids == model.variation.num_grids
        assert rebuilt.partition.grid_size == pytest.approx(model.partition.grid_size)
        assert rebuilt.correlation.neighbor_correlation == pytest.approx(
            model.correlation.neighbor_correlation
        )
        assert np.allclose(
            rebuilt.variation.local_correlation_matrix,
            model.variation.local_correlation_matrix,
        )

    def test_rebuilt_model_produces_same_delay_matrix(self, model):
        rebuilt = timing_model_from_dict(timing_model_to_dict(model))
        assert np.allclose(
            rebuilt.delay_matrix_means(), model.delay_matrix_means(), equal_nan=True
        )
        assert np.allclose(
            rebuilt.delay_matrix_stds(), model.delay_matrix_stds(), equal_nan=True
        )

    def test_file_roundtrip(self, model, tmp_path):
        path = save_timing_model(model, tmp_path / "model.json")
        assert path.exists()
        # The file is genuine JSON.
        payload = json.loads(path.read_text())
        assert payload["format"] == "repro-timing-model"
        rebuilt = load_timing_model(path)
        assert rebuilt.graph.num_edges == model.graph.num_edges


class TestValidation:
    def test_wrong_format_rejected(self, model):
        payload = timing_model_to_dict(model)
        payload["format"] = "something-else"
        with pytest.raises(ModelExtractionError):
            timing_model_from_dict(payload)

    def test_wrong_version_rejected(self, model):
        payload = timing_model_to_dict(model)
        payload["version"] = 999
        with pytest.raises(ModelExtractionError):
            timing_model_from_dict(payload)

    def test_missing_format_rejected(self, model):
        payload = timing_model_to_dict(model)
        del payload["format"]
        with pytest.raises(ModelExtractionError, match="format"):
            timing_model_from_dict(payload)

    def test_missing_version_rejected(self, model):
        payload = timing_model_to_dict(model)
        del payload["version"]
        with pytest.raises(ModelExtractionError, match="version"):
            timing_model_from_dict(payload)

    @pytest.mark.parametrize("version", ["2", 2.0, True, None])
    def test_non_integer_version_rejected(self, model, version):
        payload = timing_model_to_dict(model)
        payload["version"] = version
        with pytest.raises(ModelExtractionError, match="integer"):
            timing_model_from_dict(payload)

    def test_non_object_payload_rejected(self):
        with pytest.raises(ModelExtractionError, match="object"):
            timing_model_from_dict(["not", "a", "model"])

    def test_truncated_canonical_form_rejected(self, model):
        payload = timing_model_to_dict(model)
        payload["graph"]["edges"][0]["delay"] = [1.0]
        with pytest.raises(ModelExtractionError):
            timing_model_from_dict(payload)

    def test_oversized_local_vector_rejected(self, model):
        # More locals than the model's declared space is corruption, not
        # the padding case shorter vectors fall under.
        payload = timing_model_to_dict(model)
        edge = payload["graph"]["edges"][0]
        edge["delay"] = list(edge["delay"]) + [0.5]
        with pytest.raises(ModelExtractionError, match="num_locals"):
            timing_model_from_dict(payload)


class TestZeroLocalEncoding:
    """A length-3 delay list is the zero-local form, not a truncation."""

    def test_length3_delay_loads_as_zero_local(self, model):
        payload = timing_model_to_dict(model)
        payload["graph"]["edges"][0]["delay"] = payload["graph"]["edges"][0][
            "delay"
        ][:3]
        rebuilt = timing_model_from_dict(payload)
        assert rebuilt.graph.edges[0].delay.num_locals == 0

    def test_zero_local_model_round_trips(self, model):
        payload = timing_model_to_dict(model)
        payload["graph"]["num_locals"] = 0
        for edge in payload["graph"]["edges"]:
            edge["delay"] = edge["delay"][:3]
        first = timing_model_from_dict(payload)
        assert first.graph.num_locals == 0
        again = timing_model_from_dict(timing_model_to_dict(first))
        assert again.graph.num_locals == 0
        for a, b in zip(first.graph.edges, again.graph.edges):
            assert b.delay == a.delay
            assert b.delay.num_locals == 0


class TestTimingStatsExcluded:
    """Wall-clock timings are measurement noise, not model content."""

    def test_payload_has_no_wall_clock_timing(self, model):
        payload = timing_model_to_dict(model)
        assert "extraction_seconds" not in payload["stats"]

    def test_payloads_are_stable_across_repeated_extraction(
        self, random_graph_and_variation
    ):
        graph, variation = random_graph_and_variation
        first = extract_timing_model(graph, variation, threshold=0.05)
        second = extract_timing_model(graph, variation, threshold=0.05)
        assert first.stats.extraction_seconds != second.stats.extraction_seconds
        # ... yet the stats compare equal and the payloads are identical.
        assert first.stats == second.stats
        assert json.dumps(timing_model_to_dict(first)) == json.dumps(
            timing_model_to_dict(second)
        )

    def test_roundtrip_stats_compare_equal(self, model):
        assert model.stats.extraction_seconds > 0.0
        rebuilt = timing_model_from_dict(timing_model_to_dict(model))
        assert rebuilt.stats.extraction_seconds == 0.0
        assert rebuilt.stats == model.stats

    def test_legacy_payload_with_timing_still_loads(self, model):
        payload = timing_model_to_dict(model)
        payload["stats"]["extraction_seconds"] = 12.5  # version-1 era field
        rebuilt = timing_model_from_dict(payload)
        assert rebuilt.stats.extraction_seconds == 12.5
        assert rebuilt.stats == model.stats


class TestCriticalityRoundTrip:
    """Criticality results (with their argmax bookkeeping) survive JSON."""

    @pytest.fixture
    def criticalities(self, random_graph_and_variation):
        graph, _unused = random_graph_and_variation
        return compute_edge_criticalities(graph)

    def test_dict_roundtrip_is_exact(self, criticalities):
        rebuilt = criticality_from_dict(criticality_to_dict(criticalities))
        # json round-trips doubles through repr, so values are bit-exact.
        assert rebuilt.max_criticality == criticalities.max_criticality
        assert rebuilt.argmax_pairs == criticalities.argmax_pairs
        assert rebuilt == criticalities

    def test_file_roundtrip(self, criticalities, tmp_path):
        path = save_criticality(criticalities, tmp_path / "criticality.json")
        payload = json.loads(path.read_text())
        assert payload["format"] == "repro-criticality"
        rebuilt = load_criticality(path)
        assert rebuilt.max_criticality == criticalities.max_criticality
        assert rebuilt.argmax_pairs == criticalities.argmax_pairs

    def test_legacy_payload_without_argmax_loads(self, criticalities):
        payload = criticality_to_dict(criticalities)
        del payload["argmax_pairs"]  # pre-argmax era file
        rebuilt = criticality_from_dict(payload)
        assert rebuilt.max_criticality == criticalities.max_criticality
        assert rebuilt.argmax_pairs is None

    def test_legacy_load_still_updates_incrementally(
        self, random_graph_and_variation
    ):
        # A legacy result (argmax_pairs=None) must still be a usable seed
        # for the incremental updater: it falls back to a full recompute.
        graph, _unused = random_graph_and_variation
        session = AllPairsSession(graph)
        payload = criticality_to_dict(
            compute_edge_criticalities(graph, session.state)
        )
        del payload["argmax_pairs"]
        legacy = criticality_from_dict(payload)
        edge = graph.edges[len(graph.edges) // 2]
        graph.replace_edge_delay(edge, edge.delay.scale(1.1))
        update = session.refresh()
        updated = update_edge_criticalities(
            graph, session.state, legacy, update
        )
        reference = compute_edge_criticalities(graph, session.state)
        for edge_id, value in reference.max_criticality.items():
            assert abs(updated.max_criticality[edge_id] - value) <= 1e-9

    def test_engine_tag_not_serialized(self, criticalities):
        assert criticalities.engine is not None
        payload = criticality_to_dict(criticalities)
        assert "engine" not in payload
        assert criticality_from_dict(payload).engine is None

    def test_wrong_format_rejected(self, criticalities):
        payload = criticality_to_dict(criticalities)
        payload["format"] = "something-else"
        with pytest.raises(ModelExtractionError):
            criticality_from_dict(payload)

    def test_wrong_version_rejected(self, criticalities):
        payload = criticality_to_dict(criticalities)
        payload["version"] = 999
        with pytest.raises(ModelExtractionError):
            criticality_from_dict(payload)

    def test_mismatched_argmax_cover_rejected(self, criticalities):
        payload = criticality_to_dict(criticalities)
        first_key = next(iter(payload["argmax_pairs"]))
        del payload["argmax_pairs"][first_key]
        with pytest.raises(ModelExtractionError):
            criticality_from_dict(payload)
