"""Tests of timing-model JSON serialization."""

import json

import numpy as np
import pytest

from repro.errors import ModelExtractionError
from repro.model.extraction import extract_timing_model
from repro.model.serialization import (
    load_timing_model,
    save_timing_model,
    timing_model_from_dict,
    timing_model_to_dict,
)


@pytest.fixture
def model(random_graph_and_variation):
    graph, variation = random_graph_and_variation
    return extract_timing_model(graph, variation, threshold=0.05)


class TestRoundTrip:
    def test_dict_roundtrip_preserves_structure(self, model):
        rebuilt = timing_model_from_dict(timing_model_to_dict(model))
        assert rebuilt.name == model.name
        assert rebuilt.inputs == model.inputs
        assert rebuilt.outputs == model.outputs
        assert rebuilt.graph.num_edges == model.graph.num_edges
        assert rebuilt.graph.num_vertices == model.graph.num_vertices
        assert rebuilt.stats == model.stats

    def test_dict_roundtrip_preserves_delays(self, model):
        rebuilt = timing_model_from_dict(timing_model_to_dict(model))
        for original, copy in zip(model.graph.edges, rebuilt.graph.edges):
            assert copy.source == original.source
            assert copy.sink == original.sink
            assert copy.delay.is_close(original.delay)

    def test_dict_roundtrip_preserves_variation_metadata(self, model):
        rebuilt = timing_model_from_dict(timing_model_to_dict(model))
        assert rebuilt.variation.sigma_fraction == pytest.approx(model.variation.sigma_fraction)
        assert rebuilt.variation.num_grids == model.variation.num_grids
        assert rebuilt.partition.grid_size == pytest.approx(model.partition.grid_size)
        assert rebuilt.correlation.neighbor_correlation == pytest.approx(
            model.correlation.neighbor_correlation
        )
        assert np.allclose(
            rebuilt.variation.local_correlation_matrix,
            model.variation.local_correlation_matrix,
        )

    def test_rebuilt_model_produces_same_delay_matrix(self, model):
        rebuilt = timing_model_from_dict(timing_model_to_dict(model))
        assert np.allclose(
            rebuilt.delay_matrix_means(), model.delay_matrix_means(), equal_nan=True
        )
        assert np.allclose(
            rebuilt.delay_matrix_stds(), model.delay_matrix_stds(), equal_nan=True
        )

    def test_file_roundtrip(self, model, tmp_path):
        path = save_timing_model(model, tmp_path / "model.json")
        assert path.exists()
        # The file is genuine JSON.
        payload = json.loads(path.read_text())
        assert payload["format"] == "repro-timing-model"
        rebuilt = load_timing_model(path)
        assert rebuilt.graph.num_edges == model.graph.num_edges


class TestValidation:
    def test_wrong_format_rejected(self, model):
        payload = timing_model_to_dict(model)
        payload["format"] = "something-else"
        with pytest.raises(ModelExtractionError):
            timing_model_from_dict(payload)

    def test_wrong_version_rejected(self, model):
        payload = timing_model_to_dict(model)
        payload["version"] = 999
        with pytest.raises(ModelExtractionError):
            timing_model_from_dict(payload)

    def test_truncated_canonical_form_rejected(self, model):
        payload = timing_model_to_dict(model)
        payload["graph"]["edges"][0]["delay"] = [1.0]
        with pytest.raises(ModelExtractionError):
            timing_model_from_dict(payload)


class TestTimingStatsExcluded:
    """Wall-clock timings are measurement noise, not model content."""

    def test_payload_has_no_wall_clock_timing(self, model):
        payload = timing_model_to_dict(model)
        assert "extraction_seconds" not in payload["stats"]

    def test_payloads_are_stable_across_repeated_extraction(
        self, random_graph_and_variation
    ):
        graph, variation = random_graph_and_variation
        first = extract_timing_model(graph, variation, threshold=0.05)
        second = extract_timing_model(graph, variation, threshold=0.05)
        assert first.stats.extraction_seconds != second.stats.extraction_seconds
        # ... yet the stats compare equal and the payloads are identical.
        assert first.stats == second.stats
        assert json.dumps(timing_model_to_dict(first)) == json.dumps(
            timing_model_to_dict(second)
        )

    def test_roundtrip_stats_compare_equal(self, model):
        assert model.stats.extraction_seconds > 0.0
        rebuilt = timing_model_from_dict(timing_model_to_dict(model))
        assert rebuilt.stats.extraction_seconds == 0.0
        assert rebuilt.stats == model.stats

    def test_legacy_payload_with_timing_still_loads(self, model):
        payload = timing_model_to_dict(model)
        payload["stats"]["extraction_seconds"] = 12.5  # version-1 era field
        rebuilt = timing_model_from_dict(payload)
        assert rebuilt.stats.extraction_seconds == 12.5
        assert rebuilt.stats == model.stats
