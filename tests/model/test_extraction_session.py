"""Tests of the incremental extraction pipeline (ExtractionSession).

The session unifies the three formerly independent scratch computations —
all-pairs analysis, edge criticalities and graph reduction — behind one
journal-driven cache.  The assertions here pin the contract down: threshold
sweeps and post-ECO re-extractions through the session must produce models
*identical* to independent from-scratch extractions (the acceptance
criterion of the incremental-extraction refactor), on the ISCAS c17
circuit, a generated 4x4 array multiplier and the c432 surrogate.
"""

import random

import pytest

from repro.core.canonical import CanonicalForm
from repro.errors import ModelExtractionError
from repro.model.criticality import compute_edge_criticalities
from repro.model.extraction import (
    ExtractionSession,
    extract_timing_model,
    sweep_thresholds,
)
from repro.timing.graph import TimingGraph

SWEEP_THRESHOLDS = (0.01, 0.05, 0.1)


@pytest.fixture
def edit_module(parity_module):
    graph, variation = parity_module
    return graph.copy(), variation


def _assert_models_identical(warm, cold, what: str):
    """Structural identity of two extracted models (delays at 1e-9)."""
    warm_graph, cold_graph = warm.graph, cold.graph
    assert set(warm_graph.vertices) == set(cold_graph.vertices), what
    assert warm_graph.inputs == cold_graph.inputs, what
    assert warm_graph.outputs == cold_graph.outputs, what
    def _sorted_edges(graph):
        return sorted(
            ((edge.source, edge.sink, edge.delay) for edge in graph.edges),
            key=lambda item: (item[0], item[1]),
        )

    warm_edges = _sorted_edges(warm_graph)
    cold_edges = _sorted_edges(cold_graph)
    assert len(warm_edges) == len(cold_edges), what
    for (ws, wt, wd), (cs, ct, cd) in zip(warm_edges, cold_edges):
        assert ws == cs and wt == ct, what
        assert wd.is_close(cd, rtol=1e-9, atol=1e-9), (what, ws, wt)
    # extraction_seconds differs between the runs but is excluded from
    # ExtractionStats equality, so the full stats must compare equal.
    assert warm.stats == cold.stats, what


class TestThresholdSweep:
    def test_sweep_matches_independent_extractions(self, edit_module):
        """The satellite acceptance check: delta in {0.01, 0.05, 0.1}."""
        graph, variation = edit_module
        session = ExtractionSession(graph, variation)
        for threshold in SWEEP_THRESHOLDS:
            warm = session.extract(threshold)
            cold = extract_timing_model(graph, variation, threshold)
            _assert_models_identical(warm, cold, "delta=%s" % threshold)

    def test_sweep_thresholds_entry_point(self, edit_module):
        graph, variation = edit_module
        models = sweep_thresholds(graph, variation, SWEEP_THRESHOLDS)
        assert [model.stats.threshold for model in models] == list(SWEEP_THRESHOLDS)
        for threshold, model in zip(SWEEP_THRESHOLDS, models):
            cold = extract_timing_model(graph, variation, threshold)
            _assert_models_identical(model, cold, "entry delta=%s" % threshold)

    def test_extract_timing_model_accepts_session(self, edit_module):
        graph, variation = edit_module
        session = ExtractionSession(graph, variation)
        warm = extract_timing_model(graph, variation, 0.05, session=session)
        cold = extract_timing_model(graph, variation, 0.05)
        _assert_models_identical(warm, cold, "session=")


class TestPostEcoReextraction:
    @pytest.mark.parametrize("seed", [1, 2])
    def test_randomized_bursts_match_from_scratch(
        self, edit_module, random_graph_edit, seed
    ):
        graph, variation = edit_module
        session = ExtractionSession(graph, variation)
        session.extract(0.05)  # warm start
        rng = random.Random(seed)
        for burst in range(3):
            for _unused in range(5):
                random_graph_edit(graph, rng)
            # Criticalities updated only where the all-pairs slack moved
            # must still match a full recomputation ...
            fresh = compute_edge_criticalities(graph)
            warm = session.criticalities
            assert set(warm.max_criticality) == set(fresh.max_criticality)
            for edge_id, value in fresh.max_criticality.items():
                assert warm.max_criticality[edge_id] == pytest.approx(
                    value, abs=1e-9
                ), (seed, burst, edge_id)
            # ... and so must the extracted model.
            _assert_models_identical(
                session.extract(0.05),
                extract_timing_model(graph, variation, 0.05),
                "burst %d" % burst,
            )

    def test_original_graph_untouched_by_session_extraction(self, edit_module):
        graph, variation = edit_module
        session = ExtractionSession(graph, variation)
        edges_before = graph.num_edges
        revision_before_extract = graph.revision
        session.extract(0.05)
        assert graph.num_edges == edges_before
        assert graph.revision == revision_before_extract


class TestValidation:
    def test_session_rejects_foreign_graph(self, edit_module):
        graph, variation = edit_module
        session = ExtractionSession(graph, variation)
        other = graph.copy()
        with pytest.raises(ModelExtractionError):
            extract_timing_model(other, variation, 0.05, session=session)
        with pytest.raises(ModelExtractionError):
            sweep_thresholds(other, variation, [0.05], session=session)

    def test_session_rejects_foreign_variation(self, edit_module):
        from repro.variation.model import VariationModel

        graph, variation = edit_module
        session = ExtractionSession(graph, variation)
        # Same geometry (and therefore the same local dimension), different
        # variation model object: the session's cached tensors were built
        # for the original characterization and must not be reused.
        recharacterized = VariationModel(
            variation.partition, variation.correlation,
            variation.sigma_fraction, variation.random_variance_share,
        )
        with pytest.raises(ModelExtractionError, match="variation"):
            extract_timing_model(graph, recharacterized, 0.05, session=session)
        with pytest.raises(ModelExtractionError, match="variation"):
            sweep_thresholds(graph, recharacterized, [0.05], session=session)

    def test_session_rejects_analysis_override(self, edit_module):
        graph, variation = edit_module
        session = ExtractionSession(graph, variation)
        with pytest.raises(ModelExtractionError):
            extract_timing_model(
                graph, variation, 0.05,
                criticalities=session.criticalities, session=session,
            )

    def test_session_requires_io(self):
        graph = TimingGraph("bare", 0)
        graph.add_edge("a", "b", CanonicalForm(1.0, 0.0, None, 0.0))
        from repro.variation.grid import Die, GridPartition
        from repro.variation.model import VariationModel

        variation = VariationModel(
            GridPartition.regular(Die(10.0, 10.0), 10.0)
        )
        with pytest.raises(ModelExtractionError):
            ExtractionSession(graph, variation)

    def test_threshold_range(self, edit_module):
        graph, variation = edit_module
        session = ExtractionSession(graph, variation)
        with pytest.raises(ModelExtractionError):
            session.extract(1.0)
        with pytest.raises(ModelExtractionError):
            session.extract(-0.1)


class TestCriticalityEngineForwarding:
    """The session forwards its criticality engine to every evaluation."""

    def test_forced_engines_extract_identical_models(self, edit_module):
        graph, variation = edit_module
        scalar_model = ExtractionSession(graph, variation, engine="scalar").extract(0.05)
        batch_model = ExtractionSession(graph, variation, engine="batch").extract(0.05)
        _assert_models_identical(batch_model, scalar_model, "engine parity")

    def test_forced_engine_survives_refresh(self, edit_module):
        graph, variation = edit_module
        session = ExtractionSession(graph, variation, engine="scalar")
        assert session.criticalities.engine == "scalar"
        edge = graph.edges[len(graph.edges) // 2]
        graph.replace_edge_delay(edge, edge.delay.scale(1.15))
        session.refresh()
        # A scalar session never reports a batched evaluation, even after
        # an edit dense enough to trip the auto-switch.
        assert session.criticalities.engine in ("scalar", "incremental")

    def test_unknown_engine_rejected_at_attach(self, edit_module):
        graph, variation = edit_module
        with pytest.raises(ValueError):
            ExtractionSession(graph, variation, engine="vectorised")
