"""Tests of the serial/parallel merge operations and graph pruning."""

import numpy as np
import pytest

from repro.core.canonical import CanonicalForm
from repro.model.reduction import parallel_merge, prune_unreachable, reduce_graph, serial_merge
from repro.timing.allpairs import AllPairsTiming
from repro.timing.graph import TimingGraph


def _delay(value: float) -> CanonicalForm:
    return CanonicalForm(value, 0.05 * value, [0.02 * value], 0.03 * value)


def _matrix_moments(graph: TimingGraph):
    analysis = AllPairsTiming.analyze(graph)
    return analysis.matrix_means(), analysis.matrix_std()


class TestSerialMerge:
    def test_single_fanin_vertex_removed(self):
        graph = TimingGraph("chain", 1)
        graph.mark_input("a")
        graph.mark_output("z")
        graph.add_edge("a", "m", _delay(10.0))
        graph.add_edge("m", "z", _delay(5.0))
        removed = serial_merge(graph)
        assert removed == 1
        assert not graph.has_vertex("m")
        assert graph.num_edges == 1
        assert graph.edges[0].delay.nominal == pytest.approx(15.0)

    def test_single_fanin_multiple_fanouts(self):
        graph = TimingGraph("fork", 1)
        graph.mark_input("a")
        graph.mark_output("y")
        graph.mark_output("z")
        graph.add_edge("a", "m", _delay(10.0))
        graph.add_edge("m", "y", _delay(5.0))
        graph.add_edge("m", "z", _delay(7.0))
        serial_merge(graph)
        assert not graph.has_vertex("m")
        nominals = sorted(edge.delay.nominal for edge in graph.edges)
        assert nominals == pytest.approx([15.0, 17.0])

    def test_single_fanout_multiple_fanins(self):
        graph = TimingGraph("join", 1)
        graph.mark_input("a")
        graph.mark_input("b")
        graph.mark_output("z")
        graph.add_edge("a", "m", _delay(10.0))
        graph.add_edge("b", "m", _delay(20.0))
        graph.add_edge("m", "z", _delay(5.0))
        serial_merge(graph)
        assert not graph.has_vertex("m")
        assert graph.num_edges == 2

    def test_io_vertices_never_merged(self):
        graph = TimingGraph("direct", 1)
        graph.mark_input("a")
        graph.mark_output("z")
        graph.add_edge("a", "z", _delay(10.0))
        assert serial_merge(graph) == 0
        assert graph.has_vertex("a")
        assert graph.has_vertex("z")

    def test_merge_preserves_io_delays(self, adder_graph):
        before_mean, before_std = _matrix_moments(adder_graph)
        working = adder_graph.copy()
        serial_merge(working)
        parallel_merge(working)
        after_mean, after_std = _matrix_moments(working)
        assert np.allclose(before_mean, after_mean, rtol=0.02, equal_nan=True)
        assert np.allclose(before_std, after_std, rtol=0.1, equal_nan=True)


class TestParallelMerge:
    def test_parallel_edges_collapse_to_max(self):
        graph = TimingGraph("parallel", 1)
        graph.mark_input("a")
        graph.mark_output("z")
        graph.add_edge("a", "z", _delay(10.0))
        graph.add_edge("a", "z", _delay(30.0))
        graph.add_edge("a", "z", _delay(20.0))
        removed = parallel_merge(graph)
        assert removed == 2
        assert graph.num_edges == 1
        assert graph.edges[0].delay.nominal >= 30.0 - 1e-9

    def test_no_parallel_edges_noop(self, adder_graph):
        assert parallel_merge(adder_graph.copy()) == 0


class TestPrune:
    def test_dead_vertices_removed(self):
        graph = TimingGraph("dead", 1)
        graph.mark_input("a")
        graph.mark_output("z")
        graph.add_edge("a", "z", _delay(1.0))
        graph.add_edge("a", "dead1", _delay(1.0))
        graph.add_edge("dead1", "dead2", _delay(1.0))
        removed = prune_unreachable(graph)
        assert removed == 2
        assert graph.num_edges == 1

    def test_prune_keeps_io_vertices(self):
        graph = TimingGraph("io", 1)
        graph.mark_input("a")
        graph.mark_input("unused")
        graph.mark_output("z")
        graph.add_edge("a", "z", _delay(1.0))
        prune_unreachable(graph)
        assert graph.has_vertex("unused")


class TestReduceGraph:
    def test_fixpoint_reached(self, adder_graph):
        working = adder_graph.copy()
        reduce_graph(working)
        # Running again changes nothing.
        edges = working.num_edges
        vertices = working.num_vertices
        reduce_graph(working)
        assert working.num_edges == edges
        assert working.num_vertices == vertices

    def test_reduction_shrinks_graph(self, adder_graph):
        working = adder_graph.copy()
        reduce_graph(working)
        assert working.num_edges < adder_graph.num_edges
        assert working.num_vertices < adder_graph.num_vertices

    def test_reduction_preserves_io_delays(self, random_graph_and_variation):
        graph, _unused = random_graph_and_variation
        before_mean, before_std = _matrix_moments(graph)
        working = graph.copy()
        reduce_graph(working)
        after_mean, after_std = _matrix_moments(working)
        assert np.allclose(before_mean, after_mean, rtol=0.03, equal_nan=True)
        assert np.allclose(before_std, after_std, rtol=0.15, atol=1.0, equal_nan=True)

    def test_reduction_keeps_all_io_vertices(self, random_graph_and_variation):
        graph, _unused = random_graph_and_variation
        working = graph.copy()
        reduce_graph(working)
        assert set(working.inputs) == set(graph.inputs)
        assert set(working.outputs) == set(graph.outputs)
