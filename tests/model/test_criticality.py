"""Tests of the edge-criticality computation."""

import numpy as np
import pytest

from repro.core.canonical import CanonicalForm
from repro.model.criticality import (
    CriticalityResult,
    compute_edge_criticalities,
    edge_criticality_matrix,
)
from repro.timing.allpairs import AllPairsTiming
from repro.timing.graph import TimingGraph


def _delay(value: float) -> CanonicalForm:
    return CanonicalForm(value, 0.08 * value, [0.04 * value], 0.04 * value)


@pytest.fixture
def funnel() -> TimingGraph:
    """Two inputs funneling through one vertex, then one output."""
    graph = TimingGraph("funnel", 1)
    graph.mark_input("a")
    graph.mark_input("b")
    graph.mark_output("z")
    graph.add_edge("a", "m", _delay(10.0))
    graph.add_edge("b", "m", _delay(12.0))
    graph.add_edge("m", "z", _delay(5.0))
    return graph


@pytest.fixture
def skewed_diamond() -> TimingGraph:
    """One input, one output, one clearly dominant branch."""
    graph = TimingGraph("skewed", 1)
    graph.mark_input("a")
    graph.mark_output("z")
    graph.add_edge("a", "slow", _delay(100.0))
    graph.add_edge("slow", "z", _delay(100.0))
    graph.add_edge("a", "fast", _delay(1.0))
    graph.add_edge("fast", "z", _delay(1.0))
    return graph


class TestEdgeCriticalityMatrix:
    def test_funnel_edges_are_fully_critical(self, funnel):
        analysis = AllPairsTiming.analyze(funnel)
        matrix = {
            (edge.source, edge.sink): edge_criticality_matrix(analysis, edge)
            for edge in funnel.edges
        }
        # Edge a->m is the only path from a; it has criticality 1 for (a, z)
        # and 0 for (b, z).
        assert matrix[("a", "m")][0, 0] == pytest.approx(1.0)
        assert matrix[("a", "m")][1, 0] == pytest.approx(0.0)
        # The funnel edge m->z is on every path of every pair.
        assert np.allclose(matrix[("m", "z")], 1.0)

    def test_dominant_branch_near_one(self, skewed_diamond):
        analysis = AllPairsTiming.analyze(skewed_diamond)
        result = compute_edge_criticalities(skewed_diamond, analysis)
        by_pair = {
            (edge.source, edge.sink): result.max_criticality[edge.edge_id]
            for edge in skewed_diamond.edges
        }
        assert by_pair[("a", "slow")] > 0.99
        assert by_pair[("slow", "z")] > 0.99
        assert by_pair[("a", "fast")] < 0.01
        assert by_pair[("fast", "z")] < 0.01

    def test_balanced_branches_split_criticality(self):
        graph = TimingGraph("balanced", 1)
        graph.mark_input("a")
        graph.mark_output("z")
        graph.add_edge("a", "u", _delay(10.0))
        graph.add_edge("u", "z", _delay(10.0))
        graph.add_edge("a", "v", _delay(10.0))
        graph.add_edge("v", "z", _delay(10.0))
        result = compute_edge_criticalities(graph)
        values = list(result.max_criticality.values())
        assert all(0.3 < value < 0.7 for value in values)

    def test_values_bounded_between_zero_and_one(self, random_graph_and_variation):
        graph, _unused = random_graph_and_variation
        result = compute_edge_criticalities(graph)
        values = result.values()
        assert values.min() >= 0.0
        assert values.max() <= 1.0
        assert len(values) == graph.num_edges


class TestCriticalityResult:
    def test_histogram_covers_unit_interval(self, funnel):
        result = compute_edge_criticalities(funnel)
        counts, edges = result.histogram(bins=10)
        assert counts.sum() == funnel.num_edges
        assert edges[0] == 0.0
        assert edges[-1] == 1.0

    def test_below_threshold_selection(self, skewed_diamond):
        result = compute_edge_criticalities(skewed_diamond)
        removable = result.below(0.05)
        assert len(removable) == 2
        assert all(value < 0.05 for value in removable.values())

    def test_criticality_consistent_with_shared_analysis(self, funnel):
        analysis = AllPairsTiming.analyze(funnel)
        with_analysis = compute_edge_criticalities(funnel, analysis)
        without_analysis = compute_edge_criticalities(funnel)
        assert with_analysis.max_criticality == pytest.approx(without_analysis.max_criticality)

    def test_every_input_output_pair_keeps_a_critical_edge(self, random_graph_and_variation):
        # For every reachable pair at least one fanin edge of the output must
        # have non-trivial criticality — otherwise thresholding could remove
        # every path of that pair.
        graph, _unused = random_graph_and_variation
        analysis = AllPairsTiming.analyze(graph)
        for output in graph.outputs:
            matrices = [
                edge_criticality_matrix(analysis, edge)
                for edge in graph.fanin_edges(output)
            ]
            best = np.max(np.stack(matrices), axis=0)
            j = analysis.outputs.index(output)
            for i in range(len(analysis.inputs)):
                if analysis.matrix_valid[i, j]:
                    assert best[i, j] > 0.2
