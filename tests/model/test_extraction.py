"""Tests of the end-to-end timing-model extraction pipeline."""

import numpy as np
import pytest

from repro.errors import ModelExtractionError
from repro.model.criticality import compute_edge_criticalities
from repro.model.extraction import extract_timing_model
from repro.montecarlo.flat import simulate_io_delays
from repro.timing.allpairs import AllPairsTiming
from repro.timing.graph import TimingGraph
from repro.variation.grid import Die, GridPartition
from repro.variation.model import VariationModel


class TestValidation:
    def test_requires_inputs_and_outputs(self, small_variation):
        graph = TimingGraph("empty", small_variation.num_locals)
        graph.add_edge("a", "b", small_variation.delay_form(1.0, 1.0, 1.0))
        with pytest.raises(ModelExtractionError):
            extract_timing_model(graph, small_variation)

    def test_threshold_range(self, random_graph_and_variation):
        graph, variation = random_graph_and_variation
        with pytest.raises(ModelExtractionError):
            extract_timing_model(graph, variation, threshold=1.0)
        with pytest.raises(ModelExtractionError):
            extract_timing_model(graph, variation, threshold=-0.1)

    def test_local_dimension_mismatch(self, random_graph_and_variation):
        graph, _unused = random_graph_and_variation
        other = VariationModel(GridPartition.regular(Die(100.0, 100.0), 10.0))
        if other.num_locals != graph.num_locals:
            with pytest.raises(ModelExtractionError):
                extract_timing_model(graph, other)


class TestExtraction:
    def test_model_is_smaller(self, random_graph_and_variation):
        graph, variation = random_graph_and_variation
        model = extract_timing_model(graph, variation, threshold=0.05)
        assert model.stats.model_edges < graph.num_edges
        assert model.stats.model_vertices < graph.num_vertices
        assert model.stats.original_edges == graph.num_edges
        assert 0.0 < model.stats.edge_ratio < 1.0

    def test_original_graph_untouched(self, random_graph_and_variation):
        graph, variation = random_graph_and_variation
        edges_before = graph.num_edges
        extract_timing_model(graph, variation, threshold=0.05)
        assert graph.num_edges == edges_before

    def test_io_ports_preserved(self, random_graph_and_variation):
        graph, variation = random_graph_and_variation
        model = extract_timing_model(graph, variation, threshold=0.05)
        assert set(model.inputs) == set(graph.inputs)
        assert set(model.outputs) == set(graph.outputs)

    def test_zero_threshold_is_lossless(self, random_graph_and_variation):
        graph, variation = random_graph_and_variation
        model = extract_timing_model(graph, variation, threshold=0.0)
        full = AllPairsTiming.analyze(graph)
        assert np.allclose(
            model.delay_matrix_means(), full.matrix_means(), rtol=0.03, equal_nan=True
        )

    def test_higher_threshold_smaller_model(self, random_graph_and_variation):
        graph, variation = random_graph_and_variation
        analysis = AllPairsTiming.analyze(graph)
        criticalities = compute_edge_criticalities(graph, analysis)
        small = extract_timing_model(graph, variation, 0.02, analysis, criticalities)
        large = extract_timing_model(graph, variation, 0.3, analysis, criticalities)
        assert large.stats.model_edges <= small.stats.model_edges

    def test_model_accuracy_against_monte_carlo(self, random_graph_and_variation):
        graph, variation = random_graph_and_variation
        model = extract_timing_model(graph, variation, threshold=0.05)
        reference = simulate_io_delays(graph, num_samples=3000, seed=11)
        means = model.delay_matrix_means()
        mask = np.isfinite(means) & np.isfinite(reference.means)
        errors = np.abs(means[mask] - reference.means[mask]) / reference.means[mask]
        assert errors.max() < 0.06

    def test_reuses_precomputed_intermediates(self, random_graph_and_variation):
        graph, variation = random_graph_and_variation
        analysis = AllPairsTiming.analyze(graph)
        criticalities = compute_edge_criticalities(graph, analysis)
        a = extract_timing_model(graph, variation, 0.05, analysis, criticalities)
        b = extract_timing_model(graph, variation, 0.05)
        assert a.stats.model_edges == b.stats.model_edges
        assert a.stats.model_vertices == b.stats.model_vertices

    def test_stats_bookkeeping(self, random_graph_and_variation):
        graph, variation = random_graph_and_variation
        model = extract_timing_model(graph, variation, threshold=0.05)
        stats = model.stats
        assert stats.threshold == 0.05
        assert stats.extraction_seconds > 0.0
        # Thresholding removes ``removed_edges``; the merges can only shrink
        # the remainder further.
        assert 0 < stats.removed_edges < stats.original_edges
        assert stats.model_edges <= stats.original_edges - stats.removed_edges
        assert stats.edge_ratio == pytest.approx(stats.model_edges / stats.original_edges)
