"""Tests of the TimingModel container."""

import numpy as np
import pytest

from repro.model.extraction import extract_timing_model


@pytest.fixture
def model(random_graph_and_variation):
    graph, variation = random_graph_and_variation
    return extract_timing_model(graph, variation, threshold=0.05)


class TestTimingModel:
    def test_metadata_exposed(self, model, random_graph_and_variation):
        _unused, variation = random_graph_and_variation
        assert model.variation is variation
        assert model.partition is variation.partition
        assert model.pca is variation.pca
        assert model.correlation is variation.correlation
        assert model.die is variation.partition.die
        assert model.num_locals == variation.num_locals

    def test_delay_matrices_shapes(self, model):
        means = model.delay_matrix_means()
        stds = model.delay_matrix_stds()
        assert means.shape == (len(model.inputs), len(model.outputs))
        assert stds.shape == means.shape
        finite = np.isfinite(means)
        assert finite.any()
        assert np.all(means[finite] > 0.0)
        assert np.all(stds[finite] > 0.0)

    def test_analysis_is_cached(self, model):
        assert model.analysis() is model.analysis()

    def test_ratios(self, model):
        assert model.stats.edge_ratio == pytest.approx(
            model.stats.model_edges / model.stats.original_edges
        )
        assert model.stats.vertex_ratio == pytest.approx(
            model.stats.model_vertices / model.stats.original_vertices
        )

    def test_instantiate_prefixes_vertices(self, model):
        instance = model.instantiate("u0/")
        assert instance.num_edges == model.graph.num_edges
        assert instance.num_vertices == model.graph.num_vertices
        assert all(vertex.startswith("u0/") for vertex in instance.vertices)
        assert set(instance.inputs) == {"u0/%s" % name for name in model.inputs}

    def test_instantiate_shares_delays(self, model):
        instance = model.instantiate("u1/")
        for original, copy in zip(model.graph.edges, instance.edges):
            assert copy.delay is original.delay

    def test_repr(self, model):
        text = repr(model)
        assert "edges=" in text and "vertices=" in text
