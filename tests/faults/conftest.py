"""Shared machinery of the chaos suite.

Every test here runs the *real* engines under an armed fault plan — no
mocks.  Two constraints shape the fixtures:

* spawned pool workers snapshot ``os.environ`` at pool-creation time, so
  a test must arm ``REPRO_FAULT_PLAN`` (monkeypatch) **before** creating
  its own executor — the session-scoped pools of ``tests/parallel`` are
  useless here and every chaos test pays for a fresh 2-worker pool;
* recovery re-executes work, so every plan carries a ``fuse=`` file: the
  fault fires exactly once across all processes, and the consumed fuse is
  the proof the run was actually disturbed (no vacuous passes).
"""

from __future__ import annotations

import pytest

from repro.faults import FAULT_PLAN_ENV, reset_fault_state
from repro.parallel.pool import TASK_TIMEOUT_ENV, ShardedExecutor, WORKERS_ENV

#: Worker count of every chaos executor (two is the smallest pool where a
#: surviving worker can pick up a dead sibling's requeued work).
CHAOS_WORKERS = 2


@pytest.fixture(autouse=True)
def _clean_fault_environment(monkeypatch):
    """Fault-free baseline: no leaked plan/timeout/worker env, fresh counters."""
    monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
    monkeypatch.delenv(TASK_TIMEOUT_ENV, raising=False)
    monkeypatch.delenv(WORKERS_ENV, raising=False)
    reset_fault_state()
    yield
    reset_fault_state()


@pytest.fixture
def chaos_executor_factory():
    """Build fresh process executors (after the test armed its plan).

    Skips when the host has no working shared memory; closes every
    executor it built with a bounded timeout — a chaos test may leave a
    worker wedged in an injected hang, and teardown must not block on it.
    """
    built = []

    def factory(workers: int = CHAOS_WORKERS) -> ShardedExecutor:
        executor = ShardedExecutor(workers=workers, engine="auto")
        if executor.engine != "process":
            reason = executor.fallback_reason
            executor.close()
            pytest.skip("process engine unavailable: %s" % reason)
        built.append(executor)
        return executor

    yield factory
    for executor in built:
        executor.close(timeout=15)


@pytest.fixture
def fuse_file(tmp_path):
    """An armed fuse file (exists = the fault may still fire)."""
    fuse = tmp_path / "fault.fuse"
    fuse.write_text("armed")
    return fuse
