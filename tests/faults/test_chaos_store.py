"""Chaos suite of the persistence layer: torn writes on real snapshots.

The store plans tear a *really written* session entry — truncation after
the atomic rename, a flipped header bit — and the tests walk the whole
recovery ladder: typed detection, quarantine (evidence preserved under
``*.corrupt``), directory health sweeps, and ``on_corrupt="rebuild"``
cold sessions whose recomputed answers are ``np.array_equal`` to the
undisturbed ones.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import StoreCorruptError
from repro.faults import activate, reset_fault_state
from repro.montecarlo.flat import MonteCarloSession, simulate_graph_delay
from repro.store import (
    Store,
    load_montecarlo_session,
    save_montecarlo_session,
    verify_store,
)

#: Keeps the per-test sample matrices small while spanning several
#: counter blocks.
MC_SAMPLES = 256

STORE_PLANS = ("store-truncate@1:keep=0.6", "store-bitflip@1:seed=11")


@pytest.fixture(autouse=True)
def _fresh_counters():
    reset_fault_state()
    yield
    reset_fault_state()


@pytest.mark.parametrize("plan", STORE_PLANS)
def test_torn_session_entry_quarantines_and_rebuilds(
    tmp_path, parity_module, plan
):
    """c17/mult4/c432: torn write -> typed error -> quarantine -> rebuild.

    The rebuilt session recomputes from the live graph, so its samples are
    ``np.array_equal`` to the session that was (unsuccessfully) saved —
    the counter-based streams make the cold resample exactly reproduce the
    original draw.
    """
    graph, _variation = parity_module
    session = MonteCarloSession(graph, num_samples=MC_SAMPLES, seed=3)
    reference = session.revalidate().samples.copy()
    path = tmp_path / "mc.npz"
    with activate(plan):
        save_montecarlo_session(session, path)

    # Detection: the defensive reader refuses the torn entry, by name.
    with pytest.raises(StoreCorruptError, match="mc.npz"):
        load_montecarlo_session(path, graph=graph)
    assert path.exists()  # on_corrupt="error" leaves the evidence in place

    # Recovery: quarantine + cold rebuild from the live graph.  The
    # default cold session resamples at the session defaults, so compare
    # against a default session rather than the original's geometry.
    rebuilt = load_montecarlo_session(path, graph=graph, on_corrupt="rebuild")
    assert not path.exists()
    quarantined = tmp_path / "mc.npz.corrupt"
    assert quarantined.exists()
    assert rebuilt.store_fallback_reason is not None
    assert "quarantined" in rebuilt.store_fallback_reason
    undisturbed = MonteCarloSession(graph)
    assert np.array_equal(
        rebuilt.revalidate().samples, undisturbed.revalidate().samples
    )

    # The freed name accepts a healthy replacement; the next load is warm
    # and bit-identical to the session that never saw a torn write.
    session_again = MonteCarloSession(graph, num_samples=MC_SAMPLES, seed=3)
    save_montecarlo_session(session_again, path)
    warm = load_montecarlo_session(path, graph=graph)
    assert warm.store_fallback_reason is None
    assert np.array_equal(warm.revalidate().samples, reference)


def test_rebuild_without_live_graph_still_raises(tmp_path, parity_module):
    graph, _variation = parity_module
    session = MonteCarloSession(graph, num_samples=MC_SAMPLES, seed=3)
    path = tmp_path / "mc.npz"
    with activate("store-truncate@1:keep=0.3"):
        save_montecarlo_session(session, path)
    # A corrupt entry cannot supply the graph, so graph=None cannot rebuild.
    with pytest.raises(StoreCorruptError, match="live graph"):
        load_montecarlo_session(path, on_corrupt="rebuild")


@pytest.mark.parametrize("plan", STORE_PLANS)
def test_store_verify_reports_the_torn_entry(tmp_path, parity_module, plan):
    graph, _variation = parity_module
    store = Store(tmp_path)
    healthy_session = MonteCarloSession(graph, num_samples=MC_SAMPLES, seed=1)
    save_montecarlo_session(healthy_session, store.path("healthy"))
    torn_session = MonteCarloSession(graph, num_samples=MC_SAMPLES, seed=2)
    with activate(plan):
        save_montecarlo_session(torn_session, store.path("torn"))

    health = store.verify()
    assert not health.ok
    assert len(health.entries) == 2
    assert len(health.healthy) == 1
    assert health.healthy[0].kind == "montecarlo"
    assert health.healthy[0].graph_id == graph.name
    (corrupt,) = health.corrupt
    assert corrupt.path.name == "torn.npz"
    assert corrupt.error is not None
    assert corrupt.quarantine_path is None  # read-only sweep by default

    # repair=True moves the broken entry aside; the re-sweep is clean.
    repaired = store.verify(repair=True)
    (moved,) = repaired.corrupt
    assert moved.quarantine_path is not None
    assert moved.quarantine_path.exists()
    assert store.verify().ok
    assert "1 corrupt" in str(repaired)


def test_sharded_c7552_sweep_survives_an_armed_store_plan(tmp_path):
    """The torn-write plan end to end on the flagship circuit.

    With a store plan armed the *pool* seam stays untouched: the sharded
    c7552 Monte Carlo sweep completes ``np.array_equal`` to the uninjected
    serial run (clean ``MapReport``), while the session snapshot written
    during the run is torn, detected and quarantined — the quarantine
    record is the proof the plan fired.
    """
    from repro.liberty.library import standard_library
    from repro.netlist.iscas85 import iscas85_surrogate
    from repro.parallel.pool import ShardedExecutor
    from repro.placement.placer import place_netlist
    from repro.timing.builder import build_timing_graph, default_variation_for

    netlist = iscas85_surrogate("c7552")
    library = standard_library()
    placement = place_netlist(netlist, library)
    variation = default_variation_for(netlist, placement)
    graph = build_timing_graph(netlist, library, placement, variation)

    serial = simulate_graph_delay(
        graph, num_samples=MC_SAMPLES, engine="levelized"
    )

    executor = ShardedExecutor(workers=2, engine="auto")
    if executor.engine != "process":
        executor.close()
        pytest.skip("process engine unavailable: %s" % executor.fallback_reason)
    try:
        path = tmp_path / "c7552.npz"
        with activate("store-truncate@1:keep=0.5"):
            sharded = simulate_graph_delay(
                graph,
                num_samples=MC_SAMPLES,
                engine="levelized",
                executor=executor,
            )
            session = MonteCarloSession(graph, num_samples=MC_SAMPLES, seed=0)
            save_montecarlo_session(session, path)
        assert np.array_equal(sharded.samples, serial.samples)
        assert sharded.map_report.clean  # the store plan never touches the pool

        with pytest.raises(StoreCorruptError) as excinfo:
            load_montecarlo_session(path, graph=graph, on_corrupt="error")
        assert excinfo.value.quarantine_path is None
        health = verify_store(tmp_path, repair=True)
        (corrupt,) = health.corrupt
        assert corrupt.quarantine_path is not None  # injection proven
    finally:
        executor.close(timeout=15)
