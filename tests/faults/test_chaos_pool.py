"""Chaos suite of the execution layer: real sweeps under armed fault plans.

Every test arms one ``REPRO_FAULT_PLAN``, runs a *real* analysis — the
sharded c7552 Monte Carlo sweep, or the c17/mult4/c432 MC + corner
sweeps — through a fresh 2-worker pool, and asserts the strongest
property the design claims: the recovered results are
``np.array_equal`` to an undisturbed serial run, and the
:class:`~repro.parallel.pool.MapReport` plus the consumed fuse prove the
fault actually fired (no vacuous passes).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults import FAULT_PLAN_ENV
from repro.montecarlo.flat import simulate_graph_delay
from repro.parallel.pool import TASK_TIMEOUT_ENV
from repro.timing.arrays import GraphArrays
from repro.timing.sta import corner_sweep

#: Offsets of every chaos corner sweep (enough tasks that both workers
#: stay busy while one of them is being killed, hung or failed).
OFFSETS = [-3.0 + 0.5 * index for index in range(13)]

#: Sample count of the per-circuit Monte Carlo sweeps: four counter
#: blocks, so two workers get two block-aligned ranges each.
MC_SAMPLES = 512

#: The three pool fault kinds; the hang sleeps far past every deadline
#: used here, so only timeout-driven recovery can finish the run.
POOL_PLANS = ("worker-crash", "worker-hang", "task-raise")


def _arm(monkeypatch, fuse, kind, nth=1, timeout="20"):
    """Arm one fused pool plan plus a harvest deadline.

    The deadline is pinned for every kind: the hang *needs* it (the sleep
    outlives any liveness signal), and for the crash it closes the race
    where the pool repopulates the dead worker before the parent captured
    its PID baseline.
    """
    plan = "%s@%d:fuse=%s" % (kind, nth, fuse)
    if kind == "worker-hang":
        plan += ",seconds=300"
    monkeypatch.setenv(TASK_TIMEOUT_ENV, timeout)
    monkeypatch.setenv(FAULT_PLAN_ENV, plan)


def _assert_disturbed(report, fuse, kind):
    """The non-vacuousness contract: the fault fired and was recovered."""
    assert not fuse.exists(), "fault plan never fired (fuse still armed)"
    assert not report.clean
    if kind == "task-raise":
        assert report.failures >= 1
        assert report.retries >= 1
    else:  # crash and hang both surface as a lost/timed-out harvest
        assert report.timeouts >= 1
        assert report.respawns >= 1
    assert report.attempts >= report.tasks


# ----------------------------------------------------------------------
# The flagship: sharded c7552 Monte Carlo under every pool plan
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def c7552_graph():
    """The largest ISCAS85 surrogate, placed and characterized once."""
    from repro.liberty.library import standard_library
    from repro.netlist.iscas85 import iscas85_surrogate
    from repro.placement.placer import place_netlist
    from repro.timing.builder import build_timing_graph, default_variation_for

    netlist = iscas85_surrogate("c7552")
    library = standard_library()
    placement = place_netlist(netlist, library)
    variation = default_variation_for(netlist, placement)
    return build_timing_graph(netlist, library, placement, variation)


@pytest.mark.parametrize("kind", POOL_PLANS)
def test_c7552_mc_sweep_recovers_bit_identically(
    monkeypatch, chaos_executor_factory, fuse_file, c7552_graph, kind
):
    arrays = GraphArrays.from_graph(c7552_graph)
    reference = simulate_graph_delay(
        c7552_graph, num_samples=MC_SAMPLES, engine="levelized", arrays=arrays
    )
    assert reference.map_report is None  # undisturbed serial baseline

    _arm(monkeypatch, fuse_file, kind, timeout="15")
    executor = chaos_executor_factory()
    result = simulate_graph_delay(
        c7552_graph,
        num_samples=MC_SAMPLES,
        engine="levelized",
        executor=executor,
        arrays=arrays,
    )
    assert np.array_equal(result.samples, reference.samples)
    _assert_disturbed(result.map_report, fuse_file, kind)


# ----------------------------------------------------------------------
# The circuit matrix: c17/mult4/c432 MC + corner sweeps, every plan
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", POOL_PLANS)
def test_corner_sweep_recovers(
    monkeypatch, chaos_executor_factory, fuse_file, parity_module, kind
):
    graph, _variation = parity_module
    reference = corner_sweep(OFFSETS, graph=graph)

    _arm(monkeypatch, fuse_file, kind, nth=2, timeout="6")
    executor = chaos_executor_factory()
    swept = corner_sweep(OFFSETS, graph=graph, executor=executor)
    assert np.array_equal(swept, reference)
    _assert_disturbed(executor.last_report, fuse_file, kind)


@pytest.mark.parametrize("kind", POOL_PLANS)
def test_mc_sweep_recovers(
    monkeypatch, chaos_executor_factory, fuse_file, parity_module, kind
):
    graph, _variation = parity_module
    reference = simulate_graph_delay(
        graph, num_samples=MC_SAMPLES, engine="levelized"
    )

    _arm(monkeypatch, fuse_file, kind, timeout="6")
    executor = chaos_executor_factory()
    result = simulate_graph_delay(
        graph, num_samples=MC_SAMPLES, engine="levelized", executor=executor
    )
    assert np.array_equal(result.samples, reference.samples)
    _assert_disturbed(result.map_report, fuse_file, kind)


# ----------------------------------------------------------------------
# Degradation end state: retries exhausted -> serial, still correct
# ----------------------------------------------------------------------
def test_raise_with_no_retry_budget_degrades_to_serial(
    monkeypatch, chaos_executor_factory, parity_module
):
    """An unfused raise with ``REPRO_TASK_RETRIES=0`` leaves no middle
    rung: the first task each worker sees fails once and must finish on
    the parent's serial engine — the last step of the recovery ladder."""
    graph, _variation = parity_module
    reference = corner_sweep(OFFSETS, graph=graph)

    monkeypatch.setenv(FAULT_PLAN_ENV, "task-raise@1")
    monkeypatch.setenv("REPRO_TASK_RETRIES", "0")
    executor = chaos_executor_factory()
    swept = corner_sweep(OFFSETS, graph=graph, executor=executor)
    assert np.array_equal(swept, reference)
    report = executor.last_report
    assert report.degraded >= 1
    assert report.failures >= 1
    assert report.retries == 0
    assert report.fallback_reason is not None
    assert "failed" in report.fallback_reason


def test_clean_run_reports_clean(chaos_executor_factory, parity_module):
    graph, _variation = parity_module
    executor = chaos_executor_factory()
    swept = corner_sweep(OFFSETS, graph=graph, executor=executor)
    report = executor.last_report
    assert report.clean
    assert report.attempts == report.tasks == len(OFFSETS)
    assert np.array_equal(swept, corner_sweep(OFFSETS, graph=graph))
