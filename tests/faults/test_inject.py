"""The fault-plan grammar, activation rules, fuses and the store seam."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import FaultInjectedError, StoreCorruptError
from repro.faults import (
    FAULT_PLAN_ENV,
    FaultPlan,
    activate,
    active_plan,
    parse_plan,
    plan_from_env,
    pool_fault_point,
    reset_fault_state,
    store_fault_point,
)
from repro.store import read_entry, write_entry


# ----------------------------------------------------------------------
# Grammar
# ----------------------------------------------------------------------
def test_parse_minimal_plan():
    plan = parse_plan("worker-crash@3")
    assert plan.kind == "worker-crash"
    assert plan.nth == 3
    assert plan.seam == "pool"
    assert plan.fuse is None


def test_parse_full_option_set(tmp_path):
    fuse = tmp_path / "f"
    plan = parse_plan(
        "store-bitflip@2:seed=7,keep=0.25,seconds=1.5,fuse=%s" % fuse
    )
    assert plan.seam == "store"
    assert (plan.nth, plan.seed, plan.keep, plan.seconds) == (2, 7, 0.25, 1.5)
    assert plan.fuse == str(fuse)


def test_plan_round_trips_through_str():
    text = "worker-hang@4:seconds=2.5"
    assert str(parse_plan(text)) == text
    assert parse_plan(str(parse_plan(text))) == parse_plan(text)


@pytest.mark.parametrize(
    "text",
    [
        "worker-crash",          # no trigger
        "meteor-strike@1",       # unknown kind
        "worker-crash@zero",     # non-integer trigger
        "worker-crash@0",        # non-positive trigger
        "worker-crash@1:boom=1", # unknown option
        "worker-hang@1:seconds=soon",  # non-numeric option
        "store-truncate@1:keep=1.5",   # keep out of range
        "worker-hang@1:seconds=-1",    # negative sleep
        "worker-crash@1:fuse",         # option without '='
    ],
)
def test_bad_plans_are_rejected(text):
    with pytest.raises(ValueError):
        parse_plan(text)


def test_env_plan_errors_name_the_variable(monkeypatch):
    monkeypatch.setenv(FAULT_PLAN_ENV, "nonsense")
    with pytest.raises(ValueError, match=FAULT_PLAN_ENV):
        plan_from_env()


def test_env_plan_empty_means_no_plan(monkeypatch):
    monkeypatch.setenv(FAULT_PLAN_ENV, "  ")
    assert plan_from_env() is None
    assert active_plan() is None


# ----------------------------------------------------------------------
# Activation precedence and counters
# ----------------------------------------------------------------------
def test_programmatic_activation_beats_the_environment(monkeypatch):
    monkeypatch.setenv(FAULT_PLAN_ENV, "worker-crash@9")
    with activate("task-raise@5") as plan:
        assert active_plan() == plan
    assert active_plan() == parse_plan("worker-crash@9")


def test_activation_nests_and_restores():
    with activate("task-raise@1"):
        with activate("task-raise@2"):
            assert active_plan().nth == 2
        assert active_plan().nth == 1
    assert active_plan() is None


def test_pool_fault_fires_exactly_at_the_trigger():
    reset_fault_state()
    with activate("task-raise@3"):
        pool_fault_point("t")  # 1
        pool_fault_point("t")  # 2
        with pytest.raises(FaultInjectedError, match="task 3"):
            pool_fault_point("t")
        pool_fault_point("t")  # 4: past the trigger, never again


def test_pool_and_store_seams_count_independently(tmp_path):
    reset_fault_state()
    with activate("task-raise@1"):
        # Store events must not advance the pool counter.
        store_fault_point(tmp_path / "ignored")
        with pytest.raises(FaultInjectedError):
            pool_fault_point("t")


def test_fuse_makes_the_fault_exactly_once(tmp_path):
    fuse = tmp_path / "f"
    fuse.write_text("armed")
    reset_fault_state()
    with activate(FaultPlan(kind="task-raise", nth=1, fuse=str(fuse))):
        with pytest.raises(FaultInjectedError):
            pool_fault_point("t")
        assert not fuse.exists()
    # Re-armed at the same trigger with the fuse gone: nothing fires.
    reset_fault_state()
    with activate(FaultPlan(kind="task-raise", nth=1, fuse=str(fuse))):
        pool_fault_point("t")


# ----------------------------------------------------------------------
# Store seam: real entries, torn in place
# ----------------------------------------------------------------------
def _write_probe_entry(path):
    return write_entry(
        path, "model", "probe", 1, {"x": np.arange(64, dtype=np.int64)}
    )


def test_truncate_plan_tears_the_written_entry(tmp_path):
    path = tmp_path / "e.npz"
    reset_fault_state()
    with activate("store-truncate@1:keep=0.5"):
        _write_probe_entry(path)
    healthy = tmp_path / "h.npz"
    _write_probe_entry(healthy)
    assert path.stat().st_size == healthy.stat().st_size // 2
    with pytest.raises(StoreCorruptError, match=str(path)):
        read_entry(path)


def test_zero_keep_leaves_an_empty_file(tmp_path):
    path = tmp_path / "e.npz"
    reset_fault_state()
    with activate("store-truncate@1:keep=0"):
        _write_probe_entry(path)
    assert path.stat().st_size == 0
    with pytest.raises(StoreCorruptError):
        read_entry(path)


def test_bitflip_plan_corrupts_detectably(tmp_path):
    path = tmp_path / "e.npz"
    reset_fault_state()
    with activate("store-bitflip@1:seed=3"):
        _write_probe_entry(path)
    healthy = tmp_path / "h.npz"
    _write_probe_entry(healthy)
    # Same length, different bytes: silent corruption, caught on read.
    assert path.stat().st_size == healthy.stat().st_size
    assert path.read_bytes() != healthy.read_bytes()
    with pytest.raises(StoreCorruptError):
        read_entry(path)


def test_store_fault_counts_writes_not_reads(tmp_path):
    reset_fault_state()
    with activate("store-truncate@2"):
        first = _write_probe_entry(tmp_path / "a.npz")
        read_entry(first)  # reads never advance the counter
        second = _write_probe_entry(tmp_path / "b.npz")
    read_entry(first)
    with pytest.raises(StoreCorruptError):
        read_entry(second)


def test_no_plan_means_no_interference(tmp_path):
    reset_fault_state()
    entry = _write_probe_entry(tmp_path / "e.npz")
    loaded = read_entry(entry)
    assert np.array_equal(loaded.columns["x"], np.arange(64, dtype=np.int64))
    pool_fault_point("t")  # no-op without a plan
