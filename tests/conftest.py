"""Shared fixtures of the repro test suite.

The fixtures favour small, deterministic circuits so the full suite stays
fast; the experiment-level tests use the FAST configuration (reduced Monte
Carlo sample counts) for the same reason.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.canonical import CanonicalForm
from repro.experiments.config import ExperimentConfig
from repro.liberty.library import Library, standard_library
from repro.netlist.generators import layered_random_circuit, ripple_carry_adder
from repro.netlist.netlist import Gate, Netlist
from repro.placement.placer import Placement, place_netlist
from repro.timing.builder import build_timing_graph, default_variation_for
from repro.timing.graph import TimingGraph
from repro.variation.grid import Die, GridPartition
from repro.variation.model import VariationModel
from repro.variation.spatial import SpatialCorrelation


@pytest.fixture(scope="session")
def library() -> Library:
    """The synthetic 90 nm library shared by all tests."""
    return standard_library()


@pytest.fixture(scope="session")
def fast_config() -> ExperimentConfig:
    """Paper configuration with reduced Monte Carlo sample counts."""
    return ExperimentConfig(monte_carlo_samples=1500, monte_carlo_chunk=750)


@pytest.fixture
def tiny_netlist() -> Netlist:
    """A hand-written five-gate circuit with reconvergent fanout."""
    gates = [
        Gate("u1", "NAND", ("a", "b"), "n1"),
        Gate("u2", "NOR", ("b", "c"), "n2"),
        Gate("u3", "AND", ("n1", "n2"), "n3"),
        Gate("u4", "INV", ("n1",), "n4"),
        Gate("u5", "OR", ("n3", "n4"), "z"),
    ]
    netlist = Netlist("tiny", ["a", "b", "c"], ["z"], gates)
    netlist.validate()
    return netlist


@pytest.fixture
def adder_netlist() -> Netlist:
    """A 4-bit ripple-carry adder."""
    return ripple_carry_adder(4)


@pytest.fixture
def small_random_netlist() -> Netlist:
    """A 60-gate random circuit with exact connection count."""
    return layered_random_circuit(
        "rand60", num_inputs=8, num_outputs=5, num_gates=60, num_connections=130, seed=7
    )


@pytest.fixture
def small_variation() -> VariationModel:
    """A 2x2-grid variation model on a 10x10 die."""
    partition = GridPartition.regular(Die(10.0, 10.0), 5.0)
    return VariationModel(partition, SpatialCorrelation(), sigma_fraction=0.1,
                          random_variance_share=0.25)


@pytest.fixture
def tiny_graph(tiny_netlist, library) -> TimingGraph:
    """Statistical timing graph of the five-gate circuit."""
    placement = place_netlist(tiny_netlist, library)
    variation = default_variation_for(tiny_netlist, placement)
    return build_timing_graph(tiny_netlist, library, placement, variation)


@pytest.fixture
def adder_graph(adder_netlist, library) -> TimingGraph:
    """Statistical timing graph of the 4-bit adder."""
    placement = place_netlist(adder_netlist, library)
    variation = default_variation_for(adder_netlist, placement)
    return build_timing_graph(adder_netlist, library, placement, variation)


@pytest.fixture
def random_graph_and_variation(small_random_netlist, library):
    """Graph plus variation model of the 60-gate random circuit."""
    placement = place_netlist(small_random_netlist, library)
    variation = default_variation_for(small_random_netlist, placement)
    graph = build_timing_graph(small_random_netlist, library, placement, variation)
    return graph, variation


def make_form(
    nominal: float,
    global_coeff: float = 0.0,
    local_coeffs=None,
    random_coeff: float = 0.0,
) -> CanonicalForm:
    """Shorthand canonical-form constructor used across test modules."""
    return CanonicalForm(nominal, global_coeff, local_coeffs, random_coeff)
