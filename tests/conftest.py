"""Shared fixtures of the repro test suite.

The fixtures favour small, deterministic circuits so the full suite stays
fast; the experiment-level tests use the FAST configuration (reduced Monte
Carlo sample counts) for the same reason.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.canonical import CanonicalForm
from repro.experiments.config import ExperimentConfig
from repro.liberty.library import Library, standard_library
from repro.netlist.generators import layered_random_circuit, ripple_carry_adder
from repro.netlist.iscas85 import iscas85_surrogate
from repro.netlist.multiplier import array_multiplier
from repro.netlist.netlist import Gate, Netlist
from repro.placement.placer import Placement, place_netlist
from repro.timing.builder import build_timing_graph, default_variation_for
from repro.timing.graph import TimingGraph
from repro.variation.grid import Die, GridPartition
from repro.variation.model import VariationModel
from repro.variation.spatial import SpatialCorrelation


@pytest.fixture(scope="session")
def library() -> Library:
    """The synthetic 90 nm library shared by all tests."""
    return standard_library()


@pytest.fixture(scope="session")
def fast_config() -> ExperimentConfig:
    """Paper configuration with reduced Monte Carlo sample counts."""
    return ExperimentConfig(monte_carlo_samples=1500, monte_carlo_chunk=750)


@pytest.fixture
def tiny_netlist() -> Netlist:
    """A hand-written five-gate circuit with reconvergent fanout."""
    gates = [
        Gate("u1", "NAND", ("a", "b"), "n1"),
        Gate("u2", "NOR", ("b", "c"), "n2"),
        Gate("u3", "AND", ("n1", "n2"), "n3"),
        Gate("u4", "INV", ("n1",), "n4"),
        Gate("u5", "OR", ("n3", "n4"), "z"),
    ]
    netlist = Netlist("tiny", ["a", "b", "c"], ["z"], gates)
    netlist.validate()
    return netlist


@pytest.fixture
def adder_netlist() -> Netlist:
    """A 4-bit ripple-carry adder."""
    return ripple_carry_adder(4)


@pytest.fixture
def small_random_netlist() -> Netlist:
    """A 60-gate random circuit with exact connection count."""
    return layered_random_circuit(
        "rand60", num_inputs=8, num_outputs=5, num_gates=60, num_connections=130, seed=7
    )


@pytest.fixture
def small_variation() -> VariationModel:
    """A 2x2-grid variation model on a 10x10 die."""
    partition = GridPartition.regular(Die(10.0, 10.0), 5.0)
    return VariationModel(partition, SpatialCorrelation(), sigma_fraction=0.1,
                          random_variance_share=0.25)


@pytest.fixture
def tiny_graph(tiny_netlist, library) -> TimingGraph:
    """Statistical timing graph of the five-gate circuit."""
    placement = place_netlist(tiny_netlist, library)
    variation = default_variation_for(tiny_netlist, placement)
    return build_timing_graph(tiny_netlist, library, placement, variation)


@pytest.fixture
def adder_graph(adder_netlist, library) -> TimingGraph:
    """Statistical timing graph of the 4-bit adder."""
    placement = place_netlist(adder_netlist, library)
    variation = default_variation_for(adder_netlist, placement)
    return build_timing_graph(adder_netlist, library, placement, variation)


@pytest.fixture
def random_graph_and_variation(small_random_netlist, library):
    """Graph plus variation model of the 60-gate random circuit."""
    placement = place_netlist(small_random_netlist, library)
    variation = default_variation_for(small_random_netlist, placement)
    graph = build_timing_graph(small_random_netlist, library, placement, variation)
    return graph, variation


def make_form(
    nominal: float,
    global_coeff: float = 0.0,
    local_coeffs=None,
    random_coeff: float = 0.0,
) -> CanonicalForm:
    """Shorthand canonical-form constructor used across test modules."""
    return CanonicalForm(nominal, global_coeff, local_coeffs, random_coeff)


# ----------------------------------------------------------------------
# Shared fixtures of the incremental parity suites
# ----------------------------------------------------------------------
def _c17_netlist() -> Netlist:
    """The textbook ISCAS c17 circuit: six NAND2 gates, five PIs, two POs."""
    gates = [
        Gate("g10", "NAND", ("i1", "i3"), "n10"),
        Gate("g11", "NAND", ("i3", "i4"), "n11"),
        Gate("g16", "NAND", ("i2", "n11"), "n16"),
        Gate("g19", "NAND", ("n11", "i5"), "n19"),
        Gate("g22", "NAND", ("n10", "n16"), "o22"),
        Gate("g23", "NAND", ("n16", "n19"), "o23"),
    ]
    netlist = Netlist("c17", ["i1", "i2", "i3", "i4", "i5"], ["o22", "o23"], gates)
    netlist.validate()
    return netlist


def _placed_graph_and_variation(netlist: Netlist, library: Library):
    placement = place_netlist(netlist, library)
    variation = default_variation_for(netlist, placement)
    return build_timing_graph(netlist, library, placement, variation), variation


@pytest.fixture(scope="session")
def c17_graph(library) -> TimingGraph:
    """Pristine timing graph of the real c17 circuit (tests copy() it)."""
    return _placed_graph_and_variation(_c17_netlist(), library)[0]


@pytest.fixture(scope="session", params=["c17", "mult4", "c432"])
def parity_module(request, library):
    """Pristine ``(graph, variation)`` of the incremental-parity circuits.

    The three acceptance circuits of the incremental subsystem: the real
    ISCAS c17, a generated 4x4 array multiplier and the c432 surrogate.
    The graph is shared across tests — always ``copy()`` before editing.
    """
    if request.param == "c17":
        netlist = _c17_netlist()
    elif request.param == "mult4":
        netlist = array_multiplier(4)
    else:
        netlist = iscas85_surrogate("c432")
    return _placed_graph_and_variation(netlist, library)


@pytest.fixture(scope="session")
def random_graph_edit():
    """One random retime / remove / add edit, shared by the parity suites.

    Returns ``apply(graph, rng) -> kind`` so every randomized edit-sequence
    test exercises the same edit mix.
    """

    def _apply(graph: TimingGraph, rng: random.Random) -> str:
        kind = rng.choice(["retime", "retime", "retime", "remove", "add"])
        if kind == "retime":
            edge = rng.choice(graph.edges)
            graph.replace_edge_delay(edge, edge.delay.scale(rng.uniform(0.7, 1.3)))
        elif kind == "remove":
            graph.remove_edge(rng.choice(graph.edges))
        else:
            # An acyclic addition: connect a topologically earlier vertex
            # to a later one with a fresh statistical delay.
            order = graph.topological_order()
            i = rng.randrange(0, len(order) - 1)
            j = rng.randrange(i + 1, len(order))
            graph.add_edge(
                order[i],
                order[j],
                CanonicalForm(
                    rng.uniform(5.0, 40.0), rng.uniform(0.1, 1.0), None, 0.2
                ),
            )
        return kind

    return _apply
