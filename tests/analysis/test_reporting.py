"""Tests of the plain-text reporting helpers."""

import numpy as np
import pytest

from repro.analysis.reporting import (
    ascii_cdf_plot,
    ascii_histogram,
    format_percent,
    format_table,
)


class TestFormatting:
    def test_format_percent(self):
        assert format_percent(0.203) == "20.3%"
        assert format_percent(0.0059, digits=2) == "0.59%"

    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [("a", 1), ("bb", 22.5)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5
        # All data rows have the same width.
        assert len(lines[3]) == len(lines[4])

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [("only one",)])


class TestAsciiPlots:
    def test_histogram_renders_every_bin(self):
        counts = np.array([1, 5, 10])
        edges = np.array([0.0, 0.1, 0.2, 0.3])
        text = ascii_histogram(counts, edges, width=20, title="H")
        lines = text.splitlines()
        assert lines[0] == "H"
        assert len(lines) == 4
        assert lines[-1].count("#") == 20

    def test_histogram_handles_empty_counts(self):
        text = ascii_histogram(np.zeros(3), np.linspace(0, 1, 4))
        assert "#" not in text

    def test_cdf_plot_contains_legend_and_markers(self):
        grid = np.linspace(0.0, 1.0, 30)
        curves = {"a": grid, "b": np.sqrt(grid)}
        text = ascii_cdf_plot(grid, curves, width=40, height=10, title="cdf")
        assert "legend" in text
        assert "* a" in text
        assert "o b" in text
        assert text.count("\n") >= 12
