"""Tests of distribution helpers."""

import numpy as np
import pytest

from repro.analysis.distributions import EmpiricalDistribution, gaussian_cdf


class TestGaussianCdf:
    def test_midpoint(self):
        assert gaussian_cdf(np.array([5.0]), 5.0, 2.0)[0] == pytest.approx(0.5)

    def test_zero_sigma_is_step_function(self):
        values = gaussian_cdf(np.array([4.0, 5.0, 6.0]), 5.0, 0.0)
        assert values.tolist() == [0.0, 1.0, 1.0]


class TestEmpiricalDistribution:
    def test_requires_samples(self):
        with pytest.raises(ValueError):
            EmpiricalDistribution(np.array([]))

    def test_moments(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(10.0, 2.0, 50000)
        distribution = EmpiricalDistribution(samples)
        assert distribution.mean == pytest.approx(10.0, rel=0.01)
        assert distribution.std == pytest.approx(2.0, rel=0.02)
        assert distribution.min <= distribution.quantile(0.01)
        assert distribution.max >= distribution.quantile(0.99)

    def test_cdf_monotone_and_bounded(self):
        distribution = EmpiricalDistribution(np.array([1.0, 2.0, 3.0, 4.0]))
        grid = np.linspace(0.0, 5.0, 11)
        cdf = distribution.cdf(grid)
        assert cdf[0] == 0.0
        assert cdf[-1] == 1.0
        assert np.all(np.diff(cdf) >= 0.0)
        assert distribution.cdf(2.0) == pytest.approx(0.5)

    def test_quantile_inverse_of_cdf(self):
        rng = np.random.default_rng(1)
        distribution = EmpiricalDistribution(rng.normal(0.0, 1.0, 10000))
        for q in (0.1, 0.5, 0.9):
            value = float(distribution.quantile(q))
            assert float(distribution.cdf(value)) == pytest.approx(q, abs=0.01)

    def test_histogram_total(self):
        distribution = EmpiricalDistribution(np.arange(100, dtype=float))
        counts, _edges = distribution.histogram(bins=10)
        assert counts.sum() == 100

    def test_normalized_range(self):
        distribution = EmpiricalDistribution(np.array([5.0, 10.0, 15.0]))
        normalized = distribution.normalized()
        assert normalized.min == 0.0
        assert normalized.max == 1.0

    def test_normalized_constant_samples(self):
        distribution = EmpiricalDistribution(np.full(10, 3.0))
        normalized = distribution.normalized()
        assert normalized.min == normalized.max == 0.0
