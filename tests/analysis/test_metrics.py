"""Tests of the comparison metrics."""

import numpy as np
import pytest

from repro.analysis.distributions import EmpiricalDistribution
from repro.analysis.metrics import (
    ks_statistic_against_gaussian,
    max_cdf_gap,
    max_relative_matrix_error,
    mean_error,
    quantile_errors,
    relative_error,
    std_error,
)


class TestRelativeErrors:
    def test_relative_error(self):
        assert relative_error(11.0, 10.0) == pytest.approx(0.1)
        assert relative_error(9.0, 10.0) == pytest.approx(0.1)
        assert relative_error(0.0, 0.0) == 0.0
        assert relative_error(1.0, 0.0) == float("inf")
        assert mean_error(10.2, 10.0) == pytest.approx(0.02)
        assert std_error(1.1, 1.0) == pytest.approx(0.1)

    def test_matrix_error_ignores_nan(self):
        estimate = np.array([[1.0, 2.0], [np.nan, 4.0]])
        reference = np.array([[1.1, 2.0], [3.0, np.nan]])
        assert max_relative_matrix_error(estimate, reference) == pytest.approx(0.1 / 1.1)

    def test_matrix_error_all_nan(self):
        assert max_relative_matrix_error(np.full((2, 2), np.nan), np.ones((2, 2))) == 0.0


class TestDistributionMetrics:
    def test_ks_statistic_small_for_matching_gaussian(self):
        rng = np.random.default_rng(3)
        samples = rng.normal(5.0, 1.5, 20000)
        distribution = EmpiricalDistribution(samples)
        assert ks_statistic_against_gaussian(distribution, 5.0, 1.5) < 0.02

    def test_ks_statistic_large_for_wrong_moments(self):
        rng = np.random.default_rng(4)
        distribution = EmpiricalDistribution(rng.normal(5.0, 1.5, 20000))
        assert ks_statistic_against_gaussian(distribution, 8.0, 1.5) > 0.5

    def test_max_cdf_gap_behaviour(self):
        rng = np.random.default_rng(5)
        distribution = EmpiricalDistribution(rng.normal(0.0, 1.0, 20000))
        good = max_cdf_gap(distribution, 0.0, 1.0)
        bad = max_cdf_gap(distribution, 0.0, 2.0)
        assert good < 0.02
        assert bad > 0.1

    def test_quantile_errors(self):
        rng = np.random.default_rng(6)
        distribution = EmpiricalDistribution(rng.normal(100.0, 10.0, 50000))
        errors = quantile_errors(distribution, 100.0, 10.0)
        assert set(errors) == {0.01, 0.05, 0.5, 0.95, 0.99}
        assert max(errors.values()) < 0.02
