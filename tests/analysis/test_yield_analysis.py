"""Tests of parametric timing-yield analysis."""

import numpy as np
import pytest

from repro.analysis.distributions import EmpiricalDistribution
from repro.analysis.yield_analysis import (
    required_period_for_yield,
    timing_yield,
    yield_curve,
)
from repro.core.canonical import CanonicalForm
from repro.montecarlo.flat import simulate_graph_delay
from repro.timing.propagation import circuit_delay


@pytest.fixture
def gaussian_delay() -> CanonicalForm:
    return CanonicalForm(1000.0, 30.0, [40.0], 0.0)  # std = 50


class TestTimingYield:
    def test_yield_at_mean_is_half(self, gaussian_delay):
        assert timing_yield(gaussian_delay, 1000.0) == pytest.approx(0.5)

    def test_three_sigma_yield(self, gaussian_delay):
        assert timing_yield(gaussian_delay, 1150.0) == pytest.approx(0.99865, abs=1e-4)

    def test_empirical_input(self):
        samples = np.array([1.0, 2.0, 3.0, 4.0])
        assert timing_yield(samples, 2.5) == pytest.approx(0.5)
        assert timing_yield(EmpiricalDistribution(samples), 4.0) == 1.0

    def test_required_period_inverts_yield(self, gaussian_delay):
        for target in (0.5, 0.9, 0.99):
            period = required_period_for_yield(gaussian_delay, target)
            assert timing_yield(gaussian_delay, period) == pytest.approx(target, abs=1e-6)

    def test_required_period_validates_target(self, gaussian_delay):
        with pytest.raises(ValueError):
            required_period_for_yield(gaussian_delay, 1.5)
        with pytest.raises(ValueError):
            required_period_for_yield(gaussian_delay, 0.0)


class TestYieldCurve:
    def test_curve_is_monotone_from_zero_to_one(self, gaussian_delay):
        curve = yield_curve(gaussian_delay)
        assert curve.yields[0] < 0.01
        assert curve.yields[-1] > 0.99
        assert np.all(np.diff(curve.yields) >= -1e-12)
        assert len(curve) == 101

    def test_interpolation_helpers(self, gaussian_delay):
        curve = yield_curve(gaussian_delay)
        assert curve.at(1000.0) == pytest.approx(0.5, abs=0.01)
        assert curve.period_for(0.5) == pytest.approx(1000.0, rel=0.01)

    def test_explicit_period_grid(self, gaussian_delay):
        curve = yield_curve(gaussian_delay, periods=[900.0, 1000.0, 1100.0])
        assert len(curve) == 3

    def test_invalid_grids_rejected(self, gaussian_delay):
        with pytest.raises(ValueError):
            yield_curve(gaussian_delay, periods=[1000.0])
        with pytest.raises(ValueError):
            yield_curve(gaussian_delay, periods=[1100.0, 1000.0])

    def test_analytical_and_monte_carlo_curves_agree(self, adder_graph):
        analytical = circuit_delay(adder_graph)
        samples = simulate_graph_delay(adder_graph, num_samples=4000, seed=8).samples
        grid = np.linspace(samples.min(), samples.max(), 41)
        gaussian = yield_curve(analytical, periods=grid)
        empirical = yield_curve(samples, periods=grid)
        assert np.max(np.abs(gaussian.yields - empirical.yields)) < 0.06
