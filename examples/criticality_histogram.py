"""Edge-criticality histogram of an ISCAS85 surrogate (the paper's Fig. 6).

Run with ``python examples/criticality_histogram.py [circuit] [bins]``.
The default circuit is c7552, as in the paper; pass a smaller circuit
(e.g. ``c880``) for a faster run.
"""

from __future__ import annotations

import sys

from repro.experiments import run_figure6
from repro.experiments.config import DEFAULT_CONFIG


def main() -> None:
    circuit = sys.argv[1] if len(sys.argv) > 1 else "c7552"
    bins = int(sys.argv[2]) if len(sys.argv) > 2 else 20

    print("computing edge criticalities of %s ..." % circuit)
    result = run_figure6(circuit, bins=bins, config=DEFAULT_CONFIG)
    print(result.render())
    print()
    print("%d of %d edges would be removed at the paper's threshold of %.2f"
          % (int(result.fraction_below_threshold * result.num_edges),
             result.num_edges, result.threshold))


if __name__ == "__main__":
    main()
