"""Incremental ECO what-ifs: edit the graph, re-query, repeat.

This example walks the two headline incremental workflows:

1. **Flat single-edge what-ifs** — an :class:`IncrementalTimer` session is
   attached to an ISCAS85 graph; retiming one edge (an ECO-style buffer
   resize) and re-querying the circuit delay repropagates only the edit's
   fan-out cone instead of the whole graph.
2. **Hierarchical block swaps** — a :class:`DesignTimer` keeps a pipeline
   of pre-characterized multiplier modules alive; swapping one instance's
   extracted timing model re-times the design without rebuilding it, which
   is the paper's model-exchange use case served at what-if speed.

Run with ``PYTHONPATH=src python examples/incremental_eco.py``.
"""

from __future__ import annotations

import time

from repro.experiments.config import ExperimentConfig
from repro.experiments.figure7 import build_multiplier_module
from repro.hier.analysis import DesignTimer, analyze_hierarchical_design
from repro.hier.design import HierarchicalDesign, ModuleInstance
from repro.liberty.library import standard_library
from repro.model.extraction import extract_timing_model
from repro.netlist.iscas85 import iscas85_surrogate
from repro.placement.placer import place_netlist
from repro.timing.arrays import GraphArrays
from repro.timing.builder import build_timing_graph, default_variation_for
from repro.timing.incremental import IncrementalTimer
from repro.timing.propagation import propagate_arrival_times_batch
from repro.variation.grid import Die


def flat_single_edge_whatifs() -> None:
    print("=== Flat single-edge what-ifs (c1908) ===")
    netlist = iscas85_surrogate("c1908")
    library = standard_library()
    placement = place_netlist(netlist, library)
    variation = default_variation_for(netlist, placement)
    graph = build_timing_graph(netlist, library, placement, variation)

    session = IncrementalTimer(graph)
    baseline = session.circuit_delay()
    print("baseline delay: mean %.1f ps, std %.1f ps" % (baseline.mean, baseline.std))

    # Sweep the most critical edge through candidate sizings; each step
    # edits the graph and re-queries — the session re-times only the
    # edit's fan-out cone.
    session.set_required_time(baseline)
    criticalities = session.criticalities()
    edge = graph.edge(max(criticalities, key=criticalities.get))
    original = edge.delay
    for factor in (0.8, 0.9, 1.1, 1.25):
        graph.replace_edge_delay(edge, original.scale(factor))
        start = time.perf_counter()
        delay = session.circuit_delay()
        elapsed = 1000 * (time.perf_counter() - start)
        stats = session.last_update
        cone = stats.forward_recomputed if stats else 0
        print(
            "  edge x%.2f -> delay mean %.1f ps   (%.2f ms, cone %d of %d vertices)"
            % (factor, delay.mean, elapsed, cone, graph.num_vertices)
        )
    graph.replace_edge_delay(edge, original)
    session.circuit_delay()

    # The full-repropagation equivalent, for comparison.
    start = time.perf_counter()
    arrays = GraphArrays.from_graph(graph)
    propagate_arrival_times_batch(graph, arrays=arrays)
    elapsed = 1000 * (time.perf_counter() - start)
    print("full repropagation of the same graph: %.2f ms" % elapsed)

    # Slack queries reuse the same session state (the backward cone is
    # drained lazily the first time a slack is asked for).
    worst = min(session.slacks().values(), key=lambda form: form.mean)
    print("worst slack vs baseline constraint: %.2f ps\n" % worst.mean)


def hierarchical_block_swaps() -> None:
    print("=== Hierarchical block swaps (8-stage multiplier pipeline) ===")
    config = ExperimentConfig(monte_carlo_samples=400, monte_carlo_chunk=200)
    module = build_multiplier_module(bits=4, config=config)
    library = standard_library()
    full_graph = build_timing_graph(
        module.netlist, library, module.placement, module.variation,
        name=module.netlist.name,
    )
    # Two candidate implementations of the same block: the paper-default
    # extraction and a more aggressively compressed one.
    model_a = module.model
    model_b = extract_timing_model(
        full_graph, module.variation, threshold=0.2, name="mult4_compressed"
    )

    stages = 8
    die = model_a.die
    design = HierarchicalDesign("pipeline", Die(die.width, stages * die.height))
    for stage in range(stages):
        design.add_instance(
            ModuleInstance("s%d" % stage, model_a, 0.0, stage * die.height)
        )
    for port in model_a.inputs:
        design.add_primary_input("PI_%s" % port)
        design.connect("PI_%s" % port, "s0/%s" % port)
    for stage in range(stages - 1):
        for out_port, in_port in zip(model_a.outputs, model_a.inputs):
            design.connect(
                "s%d/%s" % (stage, out_port), "s%d/%s" % (stage + 1, in_port)
            )
    for port in model_a.outputs:
        design.add_primary_output("PO_%s" % port)
        design.connect("s%d/%s" % (stages - 1, port), "PO_%s" % port)

    session = DesignTimer(design)
    print("baseline design delay: %.1f ps" % session.circuit_delay().mean)

    # What-if loop: try the compressed model in each pipeline stage.
    for stage in ("s7", "s4", "s0"):
        start = time.perf_counter()
        session.swap_instance_model(stage, model_b)
        delay = session.circuit_delay()
        elapsed = 1000 * (time.perf_counter() - start)
        print(
            "  swap %s -> compressed: delay %.1f ps   (%.2f ms incremental)"
            % (stage, delay.mean, elapsed)
        )
        session.swap_instance_model(stage, model_a)  # revert the what-if
    session.circuit_delay()

    start = time.perf_counter()
    analyze_hierarchical_design(design)
    elapsed = 1000 * (time.perf_counter() - start)
    print("full rebuild-and-repropagate of the same design: %.2f ms" % elapsed)


if __name__ == "__main__":
    flat_single_edge_whatifs()
    hierarchical_block_swaps()
