"""Incremental model extraction: attach -> edit -> refresh -> re-extract.

This example walks the extraction-session lifecycle on the c1908 surrogate:

1. **Attach** — an :class:`ExtractionSession` binds to the module's full
   timing graph, runs the all-pairs analysis once and caches the per-edge
   criticalities against it.
2. **Sweep** — extracting at several thresholds reuses the cached tensors;
   each additional threshold pays only the copy-and-merge tail.
3. **Edit** — an ECO retime (here: resizing an input-stage buffer) lands
   in the graph's change journal.
4. **Refresh + re-extract** — the next ``extract`` replays the journal,
   repropagates only the dirty cone of the all-pairs tensors, re-evaluates
   only the criticality pairs that moved, and emits a model identical to a
   cold pipeline run.

Run with ``PYTHONPATH=src python examples/incremental_extraction.py``.
"""

from __future__ import annotations

import time

from repro.liberty.library import standard_library
from repro.model.extraction import ExtractionSession, extract_timing_model
from repro.netlist.iscas85 import iscas85_surrogate
from repro.placement.placer import place_netlist
from repro.timing.builder import build_timing_graph, default_variation_for


def main() -> None:
    print("=== Incremental model extraction (c1908) ===")
    netlist = iscas85_surrogate("c1908")
    library = standard_library()
    placement = place_netlist(netlist, library)
    variation = default_variation_for(netlist, placement)
    graph = build_timing_graph(netlist, library, placement, variation)
    print(
        "module graph: %d vertices, %d edges, %d inputs, %d outputs"
        % (graph.num_vertices, graph.num_edges, len(graph.inputs), len(graph.outputs))
    )

    # 1. Attach: one full all-pairs analysis + criticality pass.
    start = time.perf_counter()
    session = ExtractionSession(graph, variation)
    model = session.extract(0.05)
    print(
        "attach + first extraction: %.2f s -> model %d/%d edges"
        % (
            time.perf_counter() - start,
            model.stats.model_edges,
            model.stats.original_edges,
        )
    )

    # 2. Threshold sweep: the tensors and criticalities are warm, so each
    #    additional threshold costs only the copy-and-merge tail.
    for threshold in (0.01, 0.1, 0.2):
        start = time.perf_counter()
        swept = session.extract(threshold)
        print(
            "  delta=%.2f -> %4d edges, %4d vertices   (%.3f s)"
            % (
                threshold,
                swept.stats.model_edges,
                swept.stats.model_vertices,
                time.perf_counter() - start,
            )
        )

    # 3. ECO retime: resize an input-stage buffer (scale its delay).
    edge = graph.fanout_edges(graph.inputs[0])[0]
    graph.replace_edge_delay(edge, edge.delay.scale(1.3))
    print(
        "ECO: retimed edge %d (%s -> %s) by 1.3x" % (edge.edge_id, edge.source, edge.sink)
    )

    # 4. Warm re-extraction: only the dirty cone repropagates.
    start = time.perf_counter()
    warm = session.extract(0.05)
    warm_seconds = time.perf_counter() - start
    update = session.allpairs.last_update
    print(
        "warm re-extraction: %.2f s (all-pairs cone: %d forward, %d "
        "backward of %d vertices)"
        % (
            warm_seconds,
            update.forward_recomputed if update else 0,
            update.backward_recomputed if update else 0,
            graph.num_vertices,
        )
    )

    # The from-scratch pipeline agrees exactly (and is slower).
    start = time.perf_counter()
    cold = extract_timing_model(graph, variation, 0.05)
    cold_seconds = time.perf_counter() - start
    assert warm.stats == cold.stats  # timings excluded from stats equality
    print(
        "cold re-extraction for comparison: %.2f s (%.1fx slower), "
        "models identical" % (cold_seconds, cold_seconds / max(warm_seconds, 1e-9))
    )


if __name__ == "__main__":
    main()
