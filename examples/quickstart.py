"""Quickstart: statistical timing analysis of a small combinational circuit.

This example walks through the basic flow of the library:

1. build (or load) a gate-level netlist;
2. place it and attach a process-variation model;
3. build the statistical timing graph and propagate arrival times;
4. compare the SSTA delay distribution against corner STA and Monte Carlo.

Run with ``python examples/quickstart.py``.
"""

from __future__ import annotations

from repro.liberty import standard_library
from repro.montecarlo import simulate_graph_delay
from repro.netlist import ripple_carry_adder
from repro.placement import place_netlist
from repro.timing import build_timing_graph, circuit_delay, corner_sta
from repro.timing.builder import default_variation_for


def main() -> None:
    # 1. A 16-bit ripple-carry adder as the example circuit.
    netlist = ripple_carry_adder(16)
    print("circuit: %s  (%d gates, %d connections, depth %d)"
          % (netlist.name, netlist.num_gates, netlist.num_connections, netlist.logic_depth()))

    # 2. Library, placement and the paper-default variation model
    #    (Nassif sigmas, 0.92 neighbouring-grid correlation, <100 cells/grid).
    library = standard_library()
    placement = place_netlist(netlist, library)
    variation = default_variation_for(netlist, placement)
    print("die: %.1f x %.1f sites, %d correlation grids"
          % (placement.die.width, placement.die.height, variation.num_grids))

    # 3. Statistical timing graph and block-based SSTA.
    graph = build_timing_graph(netlist, library, placement, variation)
    delay = circuit_delay(graph)
    print("\nSSTA circuit delay: mean = %.1f ps, sigma = %.1f ps" % (delay.mean, delay.std))
    print("  99.9%% yield point : %.1f ps" % delay.quantile(0.999))

    # 4a. Corner STA baseline (the pessimism SSTA removes).
    corners = corner_sta(graph, sigma_corner=3.0)
    print("\ncorner STA          : nominal %.1f ps, worst(+3 sigma) %.1f ps"
          % (corners.nominal, corners.worst))
    print("  corner pessimism vs SSTA 3-sigma point: %.1f ps"
          % (corners.worst - (delay.mean + 3.0 * delay.std)))

    # 4b. Monte Carlo validation of the analytical distribution.
    monte_carlo = simulate_graph_delay(graph, num_samples=5000, seed=1)
    print("\nMonte Carlo (5000 samples): mean = %.1f ps, sigma = %.1f ps"
          % (monte_carlo.mean, monte_carlo.std))
    print("  SSTA error: mean %.2f %%, sigma %.2f %%"
          % (100.0 * abs(delay.mean - monte_carlo.mean) / monte_carlo.mean,
             100.0 * abs(delay.std - monte_carlo.std) / monte_carlo.std))


if __name__ == "__main__":
    main()
