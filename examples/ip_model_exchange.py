"""IP-style timing-model exchange plus critical-path reporting.

The scenario the paper motivates: an IP vendor cannot ship the netlist of a
module, so it characterizes a gray-box statistical timing model and ships
that instead.  This example plays both roles:

* the *vendor* characterizes a carry-select adder, extracts its timing model
  and writes it to ``adder_model.json`` (no netlist information inside);
* the *integrator* loads the model file, instantiates two copies side by
  side on a small design die, runs the hierarchical analysis with variable
  replacement, and prints the most critical design-level paths.

Run with ``python examples/ip_model_exchange.py``.
"""

from __future__ import annotations

import os
import tempfile

from repro.experiments.config import DEFAULT_CONFIG
from repro.hier import CorrelationMode, HierarchicalDesign, ModuleInstance, analyze_hierarchical_design
from repro.liberty import standard_library
from repro.model import extract_timing_model, load_timing_model, save_timing_model
from repro.netlist.generators import carry_select_adder
from repro.placement import place_netlist
from repro.timing import build_timing_graph, enumerate_critical_paths
from repro.variation.grid import Die
from repro.variation.model import VariationModel
from repro.variation.grid import GridPartition


def vendor_flow(path: str) -> None:
    """Characterize the module and ship its timing model as JSON."""
    config = DEFAULT_CONFIG
    library = standard_library()
    netlist = carry_select_adder(16, block=4, name="csa16_ip")
    placement = place_netlist(netlist, library)
    partition = GridPartition.for_cell_count(placement.die, netlist.num_gates,
                                             config.max_cells_per_grid)
    variation = VariationModel(partition, config.correlation(), config.sigma_fraction(),
                               config.random_variance_share)
    graph = build_timing_graph(netlist, library, placement, variation, name=netlist.name)
    model = extract_timing_model(graph, variation, config.criticality_threshold)
    save_timing_model(model, path)
    print("[vendor]    netlist: %d gates, %d timing edges" % (netlist.num_gates, graph.num_edges))
    print("[vendor]    shipped model: %d edges (%.0f %%), %d vertices (%.0f %%) -> %s"
          % (model.stats.model_edges, 100 * model.stats.edge_ratio,
             model.stats.model_vertices, 100 * model.stats.vertex_ratio, path))


def integrator_flow(path: str) -> None:
    """Load the shipped model and analyze a two-instance design."""
    model = load_timing_model(path)
    print("[integrator] loaded model %r with %d inputs / %d outputs"
          % (model.name, len(model.inputs), len(model.outputs)))

    die = model.die
    design = HierarchicalDesign("dual_ip", Die(2 * die.width, die.height))
    for index, name in enumerate(("ip0", "ip1")):
        design.add_instance(ModuleInstance(name, model, index * die.width, 0.0))

    # ip0 feeds ip1 through its sum outputs; everything else is a design port.
    ip0_outputs = list(model.outputs)
    ip1_inputs = list(model.inputs)
    for port in model.inputs:
        design.add_primary_input("PI_%s" % port)
        design.connect("PI_%s" % port, "ip0/%s" % port)
    for output, sink in zip(ip0_outputs, ip1_inputs):
        design.connect("ip0/%s" % output, "ip1/%s" % sink)
    for sink in ip1_inputs[len(ip0_outputs):]:
        design.add_primary_input("PI_ip1_%s" % sink)
        design.connect("PI_ip1_%s" % sink, "ip1/%s" % sink)
    for port in model.outputs:
        design.add_primary_output("PO_%s" % port)
        design.connect("ip1/%s" % port, "PO_%s" % port)
    design.validate()

    result = analyze_hierarchical_design(design, CorrelationMode.REPLACEMENT)
    print("[integrator] design delay: mean %.1f ps, sigma %.1f ps, 99.9%% point %.1f ps"
          % (result.mean, result.std, result.quantile(0.999)))

    print("[integrator] top design-level critical paths:")
    constraint = result.quantile(0.95)
    for position, path_report in enumerate(
        enumerate_critical_paths(result.graph, num_paths=5), start=1
    ):
        print("  #%d %-14s -> %-14s  %2d hops  mean %.1f ps  sigma %.1f ps  "
              "P(> %.0f ps) = %.3f"
              % (position, path_report.start, path_report.end, path_report.length,
                 path_report.delay.mean, path_report.delay.std,
                 constraint, path_report.violation_probability(constraint)))


def main() -> None:
    with tempfile.TemporaryDirectory() as directory:
        path = os.path.join(directory, "adder_model.json")
        vendor_flow(path)
        integrator_flow(path)


if __name__ == "__main__":
    main()
