"""Hierarchical statistical timing analysis of the four-multiplier design.

This reproduces the paper's Fig. 7 experiment end to end:

1. generate a 16x16 array multiplier (the c6288 structure), place it,
   characterize it, and extract its gray-box timing model;
2. instantiate four copies in two abutted columns, cross-connecting the
   first column's outputs to the second column's inputs;
3. analyze the design with the proposed independent-variable replacement,
   with the global-correlation-only baseline, and with flattened Monte
   Carlo; print the three CDFs and the speed-up.

Run with ``python examples/hierarchical_design.py [bits] [samples]``
(defaults: 16 bits, 10000 samples — use ``8 2000`` for a quick look).
"""

from __future__ import annotations

import sys

from repro.experiments import run_figure7
from repro.experiments.config import DEFAULT_CONFIG


def main() -> None:
    bits = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    samples = int(sys.argv[2]) if len(sys.argv) > 2 else 10000
    config = DEFAULT_CONFIG.with_overrides(monte_carlo_samples=samples)

    print("characterizing the %dx%d multiplier module and running the "
          "hierarchical analysis (this is the long part) ..." % (bits, bits))
    result = run_figure7(bits=bits, config=config)
    print()
    print(result.render())
    print()
    print("module characterization + model extraction: %.1f s"
          % result.characterization_seconds)
    print("proposed method accuracy vs Monte Carlo    : mean %.2f %%, sigma %.2f %%"
          % (100.0 * result.proposed_mean_error, 100.0 * result.proposed_std_error))
    print("global-only baseline sigma error           : %.2f %%"
          % (100.0 * result.global_only_std_error))


if __name__ == "__main__":
    main()
