"""Validate block-based SSTA against Monte Carlo across circuit families.

For several generated circuits (adders, a carry-select adder, an array
multiplier and a random-logic block) the example compares the analytical
SSTA delay distribution with vectorized Monte Carlo, reporting mean/sigma
errors and the Kolmogorov-Smirnov distance — the kind of sanity check one
runs before trusting the model-extraction and hierarchical results built on
top of the SSTA engine.

Run with ``python examples/monte_carlo_validation.py [samples]``.
"""

from __future__ import annotations

import sys

from repro.analysis import EmpiricalDistribution, ks_statistic_against_gaussian
from repro.analysis.reporting import format_table
from repro.liberty import standard_library
from repro.montecarlo import simulate_graph_delay
from repro.netlist import array_multiplier, layered_random_circuit, ripple_carry_adder
from repro.netlist.generators import carry_select_adder
from repro.placement import place_netlist
from repro.timing import build_timing_graph, circuit_delay
from repro.timing.builder import default_variation_for


def main() -> None:
    samples = int(sys.argv[1]) if len(sys.argv) > 1 else 5000
    library = standard_library()
    circuits = [
        ripple_carry_adder(16),
        carry_select_adder(16, block=4),
        array_multiplier(8),
        layered_random_circuit("random400", 24, 12, 400, 900, seed=11),
    ]

    rows = []
    for netlist in circuits:
        placement = place_netlist(netlist, library)
        variation = default_variation_for(netlist, placement)
        graph = build_timing_graph(netlist, library, placement, variation)
        analytical = circuit_delay(graph)
        simulated = simulate_graph_delay(graph, num_samples=samples, seed=3)
        distribution = EmpiricalDistribution(simulated.samples)
        rows.append(
            (
                netlist.name,
                netlist.num_gates,
                "%.1f" % analytical.mean,
                "%.1f" % simulated.mean,
                "%.2f%%" % (100.0 * abs(analytical.mean - simulated.mean) / simulated.mean),
                "%.1f" % analytical.std,
                "%.1f" % simulated.std,
                "%.2f%%" % (100.0 * abs(analytical.std - simulated.std) / simulated.std),
                "%.3f" % ks_statistic_against_gaussian(distribution, analytical.mean, analytical.std),
            )
        )

    headers = ["circuit", "gates", "SSTA mean", "MC mean", "mean err",
               "SSTA sigma", "MC sigma", "sigma err", "KS"]
    print(format_table(headers, rows,
                       title="SSTA vs Monte Carlo (%d samples)" % samples))


if __name__ == "__main__":
    main()
