"""Validate block-based SSTA against Monte Carlo across circuit families.

For several generated circuits (adders, a carry-select adder, an array
multiplier and a random-logic block) the example compares the analytical
SSTA delay distribution with the levelized Monte Carlo engine, reporting
mean/sigma errors and the Kolmogorov-Smirnov distance — the kind of sanity
check one runs before trusting the model-extraction and hierarchical
results built on top of the SSTA engine.

The second half demos post-ECO re-validation through a
:class:`~repro.montecarlo.MonteCarloSession`: after a retime-only ECO the
session resamples only the touched edge-delay rows and repropagates only
their fan-out cone, yet matches a cold re-simulation of the edited graph
exactly.

Run with ``python examples/monte_carlo_validation.py [samples]``.
"""

from __future__ import annotations

import random
import sys
import time

import numpy as np

from repro.analysis import EmpiricalDistribution, ks_statistic_against_gaussian
from repro.analysis.reporting import format_table
from repro.liberty import standard_library
from repro.montecarlo import MonteCarloSession, simulate_graph_delay
from repro.netlist import array_multiplier, layered_random_circuit, ripple_carry_adder
from repro.netlist.generators import carry_select_adder
from repro.placement import place_netlist
from repro.timing import build_timing_graph, circuit_delay
from repro.timing.builder import default_variation_for


def validate_families(samples: int, library) -> None:
    circuits = [
        ripple_carry_adder(16),
        carry_select_adder(16, block=4),
        array_multiplier(8),
        layered_random_circuit("random400", 24, 12, 400, 900, seed=11),
    ]

    rows = []
    for netlist in circuits:
        placement = place_netlist(netlist, library)
        variation = default_variation_for(netlist, placement)
        graph = build_timing_graph(netlist, library, placement, variation)
        analytical = circuit_delay(graph)
        simulated = simulate_graph_delay(graph, num_samples=samples, seed=3)
        distribution = EmpiricalDistribution(simulated.samples)
        rows.append(
            (
                netlist.name,
                netlist.num_gates,
                "%.1f" % analytical.mean,
                "%.1f" % simulated.mean,
                "%.2f%%" % (100.0 * abs(analytical.mean - simulated.mean) / simulated.mean),
                "%.1f" % analytical.std,
                "%.1f" % simulated.std,
                "%.2f%%" % (100.0 * abs(analytical.std - simulated.std) / simulated.std),
                "%.3f" % ks_statistic_against_gaussian(distribution, analytical.mean, analytical.std),
            )
        )

    headers = ["circuit", "gates", "SSTA mean", "MC mean", "mean err",
               "SSTA sigma", "MC sigma", "sigma err", "KS"]
    print(format_table(headers, rows,
                       title="SSTA vs Monte Carlo (%d samples)" % samples))


def demo_session_reuse(samples: int, library) -> None:
    """Warm post-ECO Monte Carlo re-validation through a session."""
    netlist = array_multiplier(8)
    placement = place_netlist(netlist, library)
    variation = default_variation_for(netlist, placement)
    graph = build_timing_graph(netlist, library, placement, variation)

    start = time.perf_counter()
    session = MonteCarloSession(graph, num_samples=samples, seed=3)
    baseline = session.revalidate()
    cold_seconds = time.perf_counter() - start

    # A small ECO: retime three random edges (e.g. a resized gate).
    rng = random.Random(5)
    for _unused in range(3):
        edge = rng.choice(graph.edges)
        graph.replace_edge_delay(edge, edge.delay.scale(rng.uniform(0.85, 1.15)))

    start = time.perf_counter()
    revalidated = session.revalidate()
    warm_seconds = time.perf_counter() - start
    refresh = session.last_refresh

    check = MonteCarloSession(graph.copy(), num_samples=samples, seed=3).revalidate()
    gap = float(np.abs(revalidated.samples - check.samples).max())

    print()
    print("Post-ECO Monte Carlo re-validation (%s, %d samples)" % (netlist.name, samples))
    print("  cold session build + simulate : %7.3f s" % cold_seconds)
    print("  warm revalidate after 3 retimes: %7.3f s  (%.1fx faster)"
          % (warm_seconds, cold_seconds / max(warm_seconds, 1e-12)))
    print("  refresh kind %r, resampled %d of %d edge rows"
          % (refresh.kind, refresh.resampled_rows, graph.num_edges))
    print("  delay mean %.1f -> %.1f ps, warm-vs-cold max deviation %.2e"
          % (baseline.mean, revalidated.mean, gap))


def main() -> None:
    samples = int(sys.argv[1]) if len(sys.argv) > 1 else 5000
    library = standard_library()
    validate_families(samples, library)
    demo_session_reuse(samples, library)


if __name__ == "__main__":
    main()
