"""Gray-box statistical timing-model extraction (the paper's Section IV).

The example characterizes an ISCAS85 surrogate circuit, extracts its timing
model at the paper's criticality threshold (0.05), and validates the model's
input/output delays against Monte Carlo simulation of the original netlist —
i.e. it reproduces one row of Table I.

Run with ``python examples/timing_model_extraction.py [circuit]``.
"""

from __future__ import annotations

import sys

import numpy as np

from repro.experiments.config import DEFAULT_CONFIG
from repro.experiments.table1 import characterize_circuit
from repro.model import compute_edge_criticalities, extract_timing_model
from repro.montecarlo import simulate_io_delays
from repro.timing import AllPairsTiming


def main() -> None:
    circuit_name = sys.argv[1] if len(sys.argv) > 1 else "c880"
    config = DEFAULT_CONFIG.with_overrides(monte_carlo_samples=4000)

    print("characterizing %s ..." % circuit_name)
    circuit = characterize_circuit(circuit_name, config)
    graph = circuit.graph
    print("original timing graph: %d vertices, %d edges"
          % (graph.num_vertices, graph.num_edges))

    # All-pairs analysis + per-edge criticalities (Fig. 3, steps 1-2).
    analysis = AllPairsTiming.analyze(graph)
    criticalities = compute_edge_criticalities(graph, analysis)
    values = criticalities.values()
    print("edge criticalities: %.0f %% below %.2f, %.0f %% above 0.95"
          % (100.0 * float(np.mean(values < config.criticality_threshold)),
             config.criticality_threshold,
             100.0 * float(np.mean(values > 0.95))))

    # Non-critical edge removal + serial/parallel merges (Fig. 3, step 3).
    model = extract_timing_model(
        graph, circuit.variation, config.criticality_threshold,
        analysis=analysis, criticalities=criticalities,
    )
    stats = model.stats
    print("extracted model: %d vertices (%.0f %%), %d edges (%.0f %%) in %.2f s"
          % (stats.model_vertices, 100.0 * stats.vertex_ratio,
             stats.model_edges, 100.0 * stats.edge_ratio,
             stats.extraction_seconds))

    # Validate the model's input/output delays against Monte Carlo.
    print("validating against Monte Carlo (%d samples) ..." % config.monte_carlo_samples)
    reference = simulate_io_delays(
        graph, num_samples=config.monte_carlo_samples,
        seed=config.seed, chunk_size=config.monte_carlo_chunk,
    )
    model_means = model.delay_matrix_means()
    model_stds = model.delay_matrix_stds()
    mask = np.isfinite(model_means) & np.isfinite(reference.means)
    mean_errors = np.abs(model_means[mask] - reference.means[mask]) / reference.means[mask]
    std_errors = np.abs(model_stds[mask] - reference.stds[mask]) / reference.stds[mask]
    print("model accuracy over %d input/output pairs:" % int(mask.sum()))
    print("  max mean error  : %.2f %%" % (100.0 * mean_errors.max()))
    print("  max sigma error : %.2f %%" % (100.0 * std_errors.max()))


if __name__ == "__main__":
    main()
