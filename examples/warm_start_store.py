"""Warm starts from the columnar snapshot store: save, "restart", replay.

This example walks the persistence lifecycle end to end on an ISCAS85
graph:

1. **Snapshot** — an :class:`IncrementalTimer` and a
   :class:`MonteCarloSession` are built cold, queried, and saved as
   revision-keyed store entries.
2. **Cold vs warm start** — the sessions are loaded back (graph rebuilt
   from the stored columns, state memory-mapped) and re-queried; the
   answers are identical and arrive in a fraction of the cold build time.
3. **Journal replay** — the live graph keeps evolving after the
   snapshot; loading against it replays the journal window so the
   restored session matches one that never restarted, bit for bit.
4. **Model exchange** — two extracted models of the same block are
   versioned through a :class:`ModelStore` and fed back into a swap.

Run with ``PYTHONPATH=src python examples/warm_start_store.py``.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np

from repro.liberty.library import standard_library
from repro.model.extraction import ExtractionSession
from repro.montecarlo.flat import MonteCarloSession
from repro.netlist.iscas85 import iscas85_surrogate
from repro.placement.placer import place_netlist
from repro.store import (
    ModelStore,
    load_incremental_timer,
    load_montecarlo_session,
    read_entry,
)
from repro.timing.builder import build_timing_graph, default_variation_for
from repro.timing.incremental import IncrementalTimer


def build_graph(name="c1908"):
    netlist = iscas85_surrogate(name)
    library = standard_library()
    placement = place_netlist(netlist, library)
    variation = default_variation_for(netlist, placement)
    graph = build_timing_graph(netlist, library, placement, variation)
    return graph, variation


def main() -> None:
    root = Path(tempfile.mkdtemp(prefix="repro_store_"))
    print("=== Snapshot (cold build, then save) ===")
    start = time.perf_counter()
    graph, variation = build_graph()
    timer = IncrementalTimer(graph)
    baseline = timer.circuit_delay()
    cold_ms = 1000 * (time.perf_counter() - start)
    print("cold build + first query: %.1f ms (delay mean %.1f ps)"
          % (cold_ms, baseline.mean))

    timer.save(root / "timer.npz")
    mc = MonteCarloSession(graph, num_samples=1000, seed=7)
    reference = mc.revalidate()
    mc.save(root / "mc.npz")
    report = read_entry(root / "timer.npz").nbytes_report()
    print("saved timer entry: %d columns, %.0f KiB on disk"
          % (len(report) - 2, report["file_bytes"] / 1024))

    print("\n=== Warm start (as a restarted process would) ===")
    start = time.perf_counter()
    restored = load_incremental_timer(root / "timer.npz")
    delay = restored.circuit_delay()
    warm_ms = 1000 * (time.perf_counter() - start)
    print("warm load + query: %.1f ms (%.1fx faster), identical: %s"
          % (warm_ms, cold_ms / warm_ms, delay == baseline))
    restored_mc = load_montecarlo_session(root / "mc.npz")
    print("Monte Carlo samples bit-identical: %s"
          % np.array_equal(restored_mc.revalidate().samples, reference.samples))

    print("\n=== Journal replay after post-snapshot edits ===")
    edge = graph.edges[len(graph.edges) // 2]
    graph.replace_edge_delay(edge, edge.delay.scale(1.2))
    never_restarted = timer.circuit_delay()
    replayed = load_incremental_timer(root / "timer.npz", graph=graph)
    print("replayed == never restarted: %s"
          % (replayed.circuit_delay() == never_restarted))

    print("\n=== Versioned model exchange ===")
    session = ExtractionSession(graph, variation)
    store = ModelStore(root / "models")
    v1 = store.put(session.extract(0.05))
    v2 = store.put(session.extract(0.2))
    name = store.names()[0]
    print("stored %r versions %r (latest v%d)"
          % (name, store.versions(name), store.latest_version(name)))
    print("v%d edges=%d, v%d edges=%d"
          % (v1, store.get(name, version=v1).graph.num_edges,
             v2, store.get(name, version=v2).graph.num_edges))
    print("library on disk: %d bytes" % store.nbytes_report()["total"])


if __name__ == "__main__":
    main()
