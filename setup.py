"""Setuptools entry point.

Carries the package metadata directly (there is no pyproject.toml in this
offline environment); the shim form also lets the package install in
editable mode where the ``wheel`` package (needed by the PEP 660 editable
build hooks of older setuptools releases) is unavailable.

The ``compiled`` extra pulls in numba for the optional compiled kernel
backend (``REPRO_BACKEND``, see :mod:`repro.core.backend`); without it the
package runs entirely on the numpy tier.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy", "scipy"],
    extras_require={"compiled": ["numba"]},
)
