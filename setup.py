"""Setuptools entry point.

The pyproject.toml declares all metadata; this shim exists so the package
can be installed in editable mode on minimal offline environments where the
``wheel`` package (needed by the PEP 660 editable build hooks of older
setuptools releases) is unavailable.
"""

from setuptools import setup

setup()
